#include "fuzz/fuzzer.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>

#include "campaign/cache.h"
#include "campaign/journal.h"
#include "campaign/signature.h"
#include "fuzz/corpus.h"
#include "fuzz/minimize.h"
#include "ir/serialize.h"
#include "rt/decode.h"
#include "support/hash.h"
#include "support/observe.h"
#include "support/stats.h"
#include "support/threadpool.h"
#include "support/trace.h"

namespace portend::fuzz {

namespace {

/** Everything one campaign index produces. */
struct IndexResult
{
    GeneratedProgram gen;
    OracleVerdict verdict;
    bool deep = false;
    bool cached = false; ///< verdict came from the campaign cache
};

/**
 * Shared persistence state of one --campaign fuzz run: the verdict
 * cache (probed by the workers), the completion journal (appended
 * under a mutex — the fsync'd write must not interleave), and the
 * hit counter the summary reports.
 */
struct CampaignState
{
    campaign::VerdictCache cache;
    campaign::JournalWriter journal;
    std::mutex journal_mu;
    std::atomic<int> cache_hits{0};
    int journal_replays = 0;

    explicit CampaignState(const std::string &dir)
        : cache(dir + "/cache")
    {}
};

/**
 * Hash every oracle dial a verdict is a function of — the fuzz
 * analogue of campaign::configHash. `deep` is a dial: a deep verdict
 * carries extra checks, so deep and shallow runs of the same program
 * must cache under different signatures. detection_seed is the whole
 * schedule; jobs never appears (the oracle is single-index).
 */
std::uint64_t
oracleConfigHash(const OracleOptions &o)
{
    std::string s = "portend-fuzz-oracle-v1";
    s += ";seed=" + std::to_string(o.detection_seed);
    s += ";mp=" + std::to_string(o.mp);
    s += ";ma=" + std::to_string(o.ma);
    s += ";max_steps=" + std::to_string(o.max_steps);
    s += ";states=" + std::to_string(o.executor_max_states);
    s += ";explore=";
    s += explore::exploreModeName(o.explore);
    s += ";deep=";
    s += o.deep ? "1" : "0";
    return fnv1a(s);
}

/** 8-hex-digit content id for deterministic entry names. */
std::string
hex8(std::uint64_t h)
{
    static const char *digits = "0123456789abcdef";
    std::string out(8, '0');
    for (int i = 7; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[h & 0xf];
        h >>= 4;
    }
    return out;
}

/** Generate + judge one campaign index. */
IndexResult
runIndex(std::uint64_t index, const FuzzOptions &opts,
         CampaignState *camp)
{
    IndexResult r;
    r.gen = generateProgram(opts.fuzz_seed, index, opts.gen);
    r.deep = opts.deep_every > 0 &&
             index % static_cast<std::uint64_t>(opts.deep_every) == 0;

    if (!r.gen.verify_errors.empty()) {
        // The generator itself emitted an invalid program: that is a
        // finding, not a crash.
        std::string all;
        for (const std::string &e : r.gen.verify_errors)
            all += (all.empty() ? "" : "; ") + e;
        r.verdict.checks.push_back({"verify", false, all});
        return r;
    }

    OracleOptions o = opts.oracle;
    o.detection_seed = opts.detection_seed;
    o.deep = r.deep;

    campaign::UnitKey key;
    std::string sig;
    if (camp) {
        key.fingerprint = rt::programFingerprint(r.gen.program);
        key.trace_hash = 0; // the oracle runs its own detection
        key.config_hash = oracleConfigHash(o);
        sig = campaign::signatureHex(key);
        if (std::optional<campaign::CacheEntry> hit =
                camp->cache.probe(sig)) {
            // An undeserializable payload (version skew, torn bytes
            // the byte-count check somehow missed) falls through to
            // a re-run — always sound, never fatal.
            if (std::optional<OracleVerdict> v =
                    deserializeVerdict(hit->payload)) {
                r.verdict = std::move(*v);
                r.cached = true;
                camp->cache_hits.fetch_add(
                    1, std::memory_order_relaxed);
                if (obs::Collector *c = obs::collector())
                    c->add(obs::Counter::CampaignCacheHits, 1);
                return r;
            }
        }
    }

    r.verdict = opts.judge ? opts.judge(r.gen.program, o)
                           : runOracle(r.gen.program, o);

    if (camp) {
        campaign::CacheEntry e;
        e.sig = sig;
        e.key = key;
        e.name = "fuzz:" + std::to_string(index);
        e.payload = serializeVerdict(r.verdict);
        camp->cache.store(e);
        if (camp->journal.isOpen()) {
            campaign::JournalRecord rec;
            rec.unit = static_cast<std::size_t>(index);
            rec.kind = "fuzz";
            rec.name = std::to_string(index);
            rec.sig = sig;
            rec.key = key;
            std::lock_guard<std::mutex> lock(camp->journal_mu);
            camp->journal.append(rec);
        }
        if (obs::Collector *c = obs::collector())
            c->add(obs::Counter::CampaignCacheMisses, 1);
    }
    return r;
}

/** Oracle re-run used by minimization probes and entry snapshots. */
OracleVerdict
judgeRecipe(const ProgramRecipe &recipe, const FuzzOptions &opts,
            bool deep)
{
    GeneratedProgram gen = buildProgram(recipe);
    if (!gen.verify_errors.empty()) {
        OracleVerdict v;
        std::string all;
        for (const std::string &e : gen.verify_errors)
            all += (all.empty() ? "" : "; ") + e;
        v.checks.push_back({"verify", false, all});
        return v;
    }
    OracleOptions o = opts.oracle;
    o.detection_seed = opts.detection_seed;
    o.deep = deep;
    return opts.judge ? opts.judge(gen.program, o)
                      : runOracle(gen.program, o);
}

/** Persist one minimized recipe as a corpus entry. */
std::string
persistEntry(const ProgramRecipe &recipe, const OracleVerdict &v,
             const std::string &kind, const std::string &check,
             std::uint64_t index, const FuzzOptions &opts,
             std::vector<std::string> &io_errors)
{
    GeneratedProgram gen = buildProgram(recipe);
    CorpusEntry entry;
    entry.kind = kind;
    entry.check = check;
    entry.fuzz_seed = opts.fuzz_seed;
    entry.index = index;
    entry.detection_seed = opts.detection_seed;
    entry.explore = explore::exploreModeName(opts.oracle.explore);
    entry.signature = v.signature();
    entry.witness = v.witness_text;
    entry.recipe_text = recipe.serialize();
    entry.program_text = ir::serializeProgram(gen.program);
    entry.trace_text = v.trace_text;
    entry.name =
        (kind == "regression" ? "sig-" : "bug-" + check + "-") +
        hex8(fnv1a(entry.kind == "regression" ? entry.signature
                                              : entry.recipe_text));
    std::string error;
    if (!saveEntry(opts.corpus_dir, entry, &error)) {
        io_errors.push_back(error);
        return "";
    }
    return entry.name;
}

} // namespace

std::string
FuzzResult::summaryText() const
{
    std::ostringstream os;
    os << "fuzz summary\n";
    os << "  fuzz seed: " << fuzz_seed
       << "  detection seed: " << detection_seed << "\n";
    os << "  programs: " << programs << " (" << verifier_clean
       << " verifier-clean)\n";
    os << "  sync idioms (programs containing each):\n";
    for (const auto &[name, n] : idiom_counts)
        os << "    " << name << " " << n << "\n";
    os << "  detection outcomes:\n";
    for (const auto &[name, n] : outcome_counts)
        os << "    " << name << " " << n << "\n";
    os << "  verdict classes (clusters):\n";
    for (const auto &[name, n] : class_counts)
        os << "    " << name << " " << n << "\n";
    os << "  oracle checks (runs / failures):\n";
    for (const auto &[name, n] : check_runs) {
        auto it = check_failures.find(name);
        os << "    " << name << " " << n << " / "
           << (it == check_failures.end() ? 0 : it->second) << "\n";
    }
    if (!baseline_counts.empty()) {
        os << "  baseline disagreements (expected, recorded):\n";
        for (const auto &[name, n] : baseline_counts)
            os << "    " << name << " " << n << "\n";
    }
    if (!corpus_dir.empty()) {
        os << "  corpus: " << regression_entries << " regression + "
           << disagreement_entries << " disagreement entr(ies) in "
           << corpus_dir << "\n";
    }
    if (!campaign_dir.empty()) {
        os << "  campaign: " << cache_hits << " cache hit(s), "
           << journal_replays << " journal record(s) replayed in "
           << campaign_dir << "\n";
    }
    for (const FuzzFinding &f : findings) {
        os << "  FINDING[" << f.index << "] check=" << f.check
           << " repro=" << f.minimized.serialize() << "\n";
        os << "    " << f.detail << "\n";
    }
    os << "  unexplained oracle disagreements: " << flagged << "\n";
    return os.str();
}

FuzzResult
runFuzz(const FuzzOptions &opts)
{
    obs::Span span("fuzz", "campaign");
    Stopwatch sw;
    FuzzResult res;
    res.fuzz_seed = opts.fuzz_seed;
    res.detection_seed = opts.detection_seed;
    res.corpus_dir = opts.corpus_dir;
    res.campaign_dir = opts.campaign_dir;

    const int jobs = ThreadPool::resolveJobs(opts.jobs);

    // -- Campaign persistence (opt-in) -------------------------------
    std::unique_ptr<CampaignState> camp;
    if (!opts.campaign_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opts.campaign_dir, ec);
        camp = std::make_unique<CampaignState>(opts.campaign_dir);
        const std::string journal_path =
            opts.campaign_dir + "/journal.jsonl";
        camp->journal_replays = static_cast<int>(
            campaign::loadJournal(journal_path).size());
        camp->journal.open(journal_path);
        if (obs::Collector *c = obs::collector())
            c->add(obs::Counter::CampaignJournalReplays,
                   static_cast<std::uint64_t>(camp->journal_replays));
    }

    // -- Generation + oracle, fanned out on the thread pool ----------
    std::vector<IndexResult> results;
    if (opts.seconds > 0.0) {
        // Time-boxed mode: sequential-batch until the box is spent.
        // Program count depends on the host (see fuzzer.h).
        std::uint64_t next = 0;
        while (sw.seconds() < opts.seconds) {
            const std::size_t batch =
                static_cast<std::size_t>(std::max(1, jobs)) * 4;
            const std::size_t base = results.size();
            results.resize(base + batch);
            ThreadPool::parallelFor(jobs, batch, [&] {
                return [&, base](std::size_t i) {
                    results[base + i] =
                        runIndex(next + i, opts, camp.get());
                };
            });
            next += batch;
        }
    } else {
        const std::size_t n =
            static_cast<std::size_t>(std::max(0, opts.budget));
        results.resize(n);
        ThreadPool::parallelFor(jobs, n, [&] {
            return [&](std::size_t i) {
                results[i] = runIndex(i, opts, camp.get());
            };
        });
    }

    // -- Deterministic fold in index order ---------------------------
    std::size_t fold_index = 0;
    for (const IndexResult &r : results) {
        // `--progress jsonl`: one line per fuzz iteration, emitted
        // here (sequentially, in index order) rather than from the
        // workers, so the stream order is deterministic too.
        if (obs::progress()) {
            char buf[192];
            std::snprintf(buf, sizeof buf,
                          "{\"event\": \"fuzz_iteration\", "
                          "\"index\": %zu, \"outcome\": \"%s\", "
                          "\"flagged\": %s}",
                          fold_index, r.verdict.outcome.c_str(),
                          r.verdict.flagged() ? "true" : "false");
            obs::progressLine(buf);
        }
        fold_index += 1;
        if (obs::Collector *c = obs::collector()) {
            c->add(obs::Counter::FuzzPrograms, 1);
            c->add(obs::Counter::FuzzFlagged,
                   r.verdict.flagged() ? 1 : 0);
            if (camp)
                c->add(obs::Counter::CampaignUnits, 1);
        }
        res.programs += 1;
        if (r.gen.verify_errors.empty())
            res.verifier_clean += 1;
        for (const std::string &idiom : r.gen.idioms)
            res.idiom_counts[idiom] += 1;
        if (!r.verdict.outcome.empty())
            res.outcome_counts[r.verdict.outcome] += 1;
        for (const auto &[cls, n] : r.verdict.class_counts)
            res.class_counts[cls] += n;
        for (const CheckResult &c : r.verdict.checks) {
            res.check_runs[c.name] += 1;
            if (!c.ok)
                res.check_failures[c.name] += 1;
        }
        for (const auto &[name, n] : r.verdict.baseline_counts)
            res.baseline_counts[name] += n;
        if (r.verdict.flagged())
            res.flagged += 1;
    }

    // -- Minimization + corpus persistence (sequential, in index
    //    order, so corpora are byte-identical across runs) ----------
    std::set<std::string> seen_signatures;
    std::vector<std::string> io_errors;
    int new_entries = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const IndexResult &r = results[i];

        if (r.verdict.flagged()) {
            const std::string check = r.verdict.firstFailure();
            // Deep (metamorphic re-execution) probes are only needed
            // when the falsified check is itself a deep one; cheap
            // checks are decided before the deep section runs.
            const bool deep_check = check == "determinism" ||
                                    check == "jobs-invariance" ||
                                    check == "k-monotonicity";
            MinimizeResult min = minimizeRecipe(
                r.gen.recipe,
                [&](const ProgramRecipe &cand) {
                    return judgeRecipe(cand, opts, deep_check)
                               .firstFailure() == check;
                });
            FuzzFinding finding;
            finding.index = static_cast<std::uint64_t>(i);
            finding.check = check;
            for (const CheckResult &c : r.verdict.checks)
                if (!c.ok && c.name == check)
                    finding.detail = c.detail;
            finding.minimized = min.recipe;
            // A 'verify' finding has no structurally valid program to
            // replay (deserialization would reject it forever), so
            // the minimized recipe in the summary is the reproducer;
            // everything else is persisted for `corpus run` triage.
            if (!opts.corpus_dir.empty() && check != "verify") {
                OracleVerdict mv =
                    judgeRecipe(min.recipe, opts, deep_check);
                finding.entry_name = persistEntry(
                    min.recipe, mv, "disagreement", check,
                    static_cast<std::uint64_t>(i), opts, io_errors);
                if (!finding.entry_name.empty())
                    res.disagreement_entries += 1;
            }
            res.findings.push_back(std::move(finding));
            continue;
        }

        if (opts.corpus_dir.empty() ||
            new_entries >= opts.max_new_entries) {
            continue;
        }
        const std::string sig = r.verdict.signature();
        if (!seen_signatures.insert(sig).second)
            continue;
        MinimizeResult min = minimizeRecipe(
            r.gen.recipe, [&](const ProgramRecipe &cand) {
                OracleVerdict v = judgeRecipe(cand, opts, false);
                return !v.flagged() && v.signature() == sig;
            });
        OracleVerdict mv = judgeRecipe(min.recipe, opts, false);
        if (!persistEntry(min.recipe, mv, "regression", "",
                          static_cast<std::uint64_t>(i), opts,
                          io_errors)
                 .empty()) {
            res.regression_entries += 1;
            new_entries += 1;
        }
    }
    for (const std::string &e : io_errors) {
        res.findings.push_back(
            FuzzFinding{0, "corpus-io", e, ProgramRecipe{}, ""});
        res.flagged += 1;
    }

    if (camp) {
        res.cache_hits =
            camp->cache_hits.load(std::memory_order_relaxed);
        res.journal_replays = camp->journal_replays;
        camp->journal.close();
    }

    if (obs::Collector *c = obs::collector()) {
        c->level(obs::Gauge::FuzzCorpusSize,
                 static_cast<std::uint64_t>(res.regression_entries +
                                            res.disagreement_entries));
    }
    span.arg("programs", res.programs);
    span.arg("flagged", res.flagged);
    res.seconds = sw.seconds();
    return res;
}

} // namespace portend::fuzz
