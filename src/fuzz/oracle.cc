#include "fuzz/oracle.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "baseline/adhoc_detector.h"
#include "baseline/heuristic.h"
#include "baseline/replay_analyzer.h"
#include "ir/serialize.h"
#include "ir/verifier.h"
#include "portend/portend.h"
#include "replay/trace.h"
#include "rt/vmstate.h"

namespace portend::fuzz {

bool
OracleVerdict::flagged() const
{
    return std::any_of(checks.begin(), checks.end(),
                       [](const CheckResult &c) { return !c.ok; });
}

std::string
OracleVerdict::firstFailure() const
{
    for (const CheckResult &c : checks)
        if (!c.ok)
            return c.name;
    return "";
}

std::string
OracleVerdict::signature() const
{
    std::ostringstream os;
    os << "out=" << outcome << ";races=" << distinct_races
       << ";classes=";
    bool first = true;
    for (const auto &[cls, n] : class_counts) {
        if (!first)
            os << ",";
        os << cls << ":" << n;
        first = false;
    }
    return os.str();
}

namespace {

/** Portend options for the oracle's full-budget pipeline runs. */
core::PortendOptions
fullOptions(const OracleOptions &o)
{
    core::PortendOptions p;
    p.mp = o.mp;
    p.ma = o.ma;
    p.max_steps = o.max_steps;
    p.executor_max_states = o.executor_max_states;
    p.detection_seed = o.detection_seed;
    p.explore = o.explore;
    p.jobs = 1;
    return p;
}

/** The verdict bytes a pipeline run must reproduce exactly. */
std::string
renderRun(const ir::Program &prog, const core::PortendResult &res)
{
    std::ostringstream os;
    for (const core::PortendReport &r : res.reports)
        os << core::formatReport(prog, r);
    return os.str();
}

/** Distinct raced cell ids of a detection result. */
std::set<int>
racedCells(const core::DetectionResult &det)
{
    std::set<int> cells;
    for (const race::RaceCluster &c : det.clusters)
        cells.insert(c.representative.cell);
    return cells;
}

/** "a ⊆ b"; on failure lists the missing cells by name. */
CheckResult
subsetCheck(const std::string &name, const ir::Program &prog,
            const std::set<int> &a, const std::set<int> &b)
{
    CheckResult r{name, true, ""};
    std::vector<std::string> missing;
    for (int cell : a)
        if (!b.count(cell))
            missing.push_back(prog.cellName(cell));
    if (!missing.empty()) {
        r.ok = false;
        std::ostringstream os;
        os << "cells raced by hb but not by the weaker detector:";
        for (const std::string &m : missing)
            os << " " << m;
        r.detail = os.str();
    }
    return r;
}

} // namespace

OracleVerdict
runOracle(const ir::Program &prog, const OracleOptions &opts)
{
    OracleVerdict v;
    auto check = [&](std::string name, bool ok, std::string detail) {
        v.checks.push_back(
            {std::move(name), ok, ok ? "" : std::move(detail)});
    };

    // -- Structural checks -------------------------------------------
    {
        std::vector<std::string> errors = ir::verifyProgram(prog);
        std::string all;
        for (const std::string &e : errors)
            all += (all.empty() ? "" : "; ") + e;
        check("verify", errors.empty(), all);
        if (!errors.empty())
            return v; // running an invalid program proves nothing
    }
    {
        std::string text = ir::serializeProgram(prog);
        std::string error;
        std::optional<ir::Program> back =
            ir::deserializeProgram(text, &error);
        if (!back) {
            check("roundtrip", false, "deserialize failed: " + error);
        } else {
            check("roundtrip", ir::serializeProgram(*back) == text,
                  "re-serialization differs from original");
        }
    }

    // -- Primary pipeline run ----------------------------------------
    const core::PortendOptions full = fullOptions(opts);
    core::Portend tool(prog, full);
    core::PortendResult r1 = tool.run();

    v.outcome = rt::runOutcomeName(r1.detection.outcome);
    v.distinct_races = static_cast<int>(r1.detection.clusters.size());
    v.dynamic_races = static_cast<int>(r1.detection.dynamic_races);
    for (const core::PortendReport &rep : r1.reports)
        v.class_counts[core::raceClassName(rep.classification.cls)] += 1;
    v.trace_text = r1.detection.trace.serialize();
    v.report_text = renderRun(prog, r1);

    // -- Detector monotonicity ---------------------------------------
    {
        core::PortendOptions o = full;
        o.detector = core::DetectorKind::HappensBeforeNoMutex;
        core::DetectionResult nomutex = core::Portend(prog, o).detect();
        o.detector = core::DetectorKind::Lockset;
        core::DetectionResult lockset = core::Portend(prog, o).detect();

        std::set<int> hb_cells = racedCells(r1.detection);
        v.checks.push_back(subsetCheck("hb-subset-nomutex", prog,
                                       hb_cells,
                                       racedCells(nomutex)));
        v.checks.push_back(subsetCheck("hb-subset-lockset", prog,
                                       hb_cells,
                                       racedCells(lockset)));
    }

    // -- Classifier vs. baselines ------------------------------------
    {
        baseline::AdhocDetector adhoc(prog);
        baseline::HeuristicClassifier heuristic(prog);
        baseline::ReplayAnalyzer rra(prog, opts.max_steps);
        for (const core::PortendReport &rep : r1.reports) {
            const race::RaceReport &race = rep.cluster.representative;
            if (adhoc.classify(race) ==
                baseline::AdhocVerdict::SingleOrdering) {
                if (rep.classification.cls ==
                    core::RaceClass::Unclassified) {
                    // Dynamic analysis could not complete (e.g. an
                    // unrelated crash truncated every replay), so
                    // the static claim is unconfirmable, not
                    // contradicted. Record, never flag.
                    v.baseline_counts["adhoc-unconfirmed-unclassified"]
                        += 1;
                } else {
                    bool agrees = rep.classification.cls ==
                                  core::RaceClass::SingleOrdering;
                    check("adhoc-agreement", agrees,
                          "static spin-flag race on " +
                              prog.cellName(race.cell) +
                              " classified as " +
                              core::raceClassName(
                                  rep.classification.cls));
                }
            }
            baseline::HeuristicResult h = heuristic.classify(race);
            if (h.verdict == baseline::HeuristicVerdict::LikelyHarmless &&
                rep.classification.harmful()) {
                // DataCollider-style heuristics are wrong in both
                // directions (§2.1); record, never flag.
                v.baseline_counts["heuristic-false-negative"] += 1;
            }
            if (opts.deep) {
                baseline::ReplayAnalysis ra =
                    rra.analyze(race, r1.detection.trace);
                bool portend_harmless =
                    rep.classification.cls ==
                        core::RaceClass::KWitnessHarmless ||
                    rep.classification.cls ==
                        core::RaceClass::SingleOrdering;
                if (ra.verdict ==
                        baseline::ReplayVerdict::LikelyHarmful &&
                    portend_harmless) {
                    // The paper's headline comparison: RR-Analyzer's
                    // conservatism vs Portend. Expected, recorded.
                    v.baseline_counts
                        ["replay-analyzer-conservative-fp"] += 1;
                }
            }
        }
    }

    if (!opts.deep)
        return v;

    // -- Determinism: same seed, byte-identical everything -----------
    {
        core::PortendResult r2 = core::Portend(prog, full).run();
        bool same_trace =
            r2.detection.trace.serialize() == v.trace_text;
        bool same_report = renderRun(prog, r2) == v.report_text;
        check("determinism", same_trace && same_report,
              same_trace ? "verdict report bytes differ between runs"
                         : "recorded schedule trace differs between "
                           "runs");
    }

    // -- Jobs invariance: --jobs 2 == --jobs 1 -----------------------
    {
        core::PortendOptions o = full;
        o.jobs = 2;
        core::PortendResult rj = core::Portend(prog, o).run();
        check("jobs-invariance", renderRun(prog, rj) == v.report_text,
              "verdict report bytes differ between --jobs 1 and "
              "--jobs 2");
    }

    // -- Schedule-coverage monotonicity ------------------------------
    // Raising the Ma budget, or switching the stage-3 explorer from
    // random to dpor, may only *add* witnessed behaviors: a "spec
    // violated" verdict must never be lost. The explorer guarantees
    // this structurally — dpor runs the random schedules first, with
    // the same seeds and in the same order — so a failure here means
    // the exploration superset contract broke.
    {
        const auto lostViolation =
            [&](const core::PortendResult &lo,
                const core::PortendResult &hi) {
                std::map<std::string, const core::PortendReport *> h;
                for (const core::PortendReport &rep : hi.reports)
                    h[rep.cluster.representative.key()] = &rep;
                std::string bad;
                for (const core::PortendReport &rep : lo.reports) {
                    if (rep.classification.cls !=
                        core::RaceClass::SpecViolated) {
                        continue;
                    }
                    auto it = h.find(rep.cluster.representative.key());
                    if (it == h.end())
                        continue;
                    if (it->second->classification.cls !=
                        core::RaceClass::SpecViolated) {
                        bad += (bad.empty() ? "" : "; ") +
                               std::string("race on ") +
                               prog.cellName(
                                   rep.cluster.representative.cell) +
                               " degraded to " +
                               core::raceClassName(
                                   it->second->classification.cls);
                    }
                }
                return bad;
            };

        // random -> dpor at equal budget.
        core::PortendOptions o = full;
        o.explore = full.explore == explore::ExploreMode::Dpor
                        ? explore::ExploreMode::Random
                        : explore::ExploreMode::Dpor;
        core::PortendResult other = core::Portend(prog, o).run();
        const core::PortendResult &as_random =
            full.explore == explore::ExploreMode::Dpor ? other : r1;
        const core::PortendResult &as_dpor =
            full.explore == explore::ExploreMode::Dpor ? r1 : other;
        const std::string lost_explore =
            lostViolation(as_random, as_dpor);
        check("explore-monotonicity", lost_explore.empty(),
              "random->dpor lost a spec-violated verdict: " +
                  lost_explore);

        // Ma raise in the primary explorer.
        core::PortendOptions wide = full;
        wide.ma = full.ma * 2;
        core::PortendResult rw = core::Portend(prog, wide).run();
        const std::string lost_ma = lostViolation(r1, rw);
        check("ma-monotonicity", lost_ma.empty(),
              "doubling --ma lost a spec-violated verdict: " +
                  lost_ma);
    }

    // -- k-monotonicity ----------------------------------------------
    {
        core::PortendOptions lo = full;
        lo.mp = 1;
        lo.ma = 1;
        lo.multi_path = false;
        lo.multi_schedule = false;
        core::PortendResult rl = core::Portend(prog, lo).run();

        // Match clusters by static race identity.
        std::map<std::string, const core::PortendReport *> high;
        for (const core::PortendReport &rep : r1.reports)
            high[rep.cluster.representative.key()] = &rep;
        std::string viol;
        for (const core::PortendReport &rep : rl.reports) {
            auto it = high.find(rep.cluster.representative.key());
            if (it == high.end())
                continue;
            const core::Classification &clo = rep.classification;
            const core::Classification &chi =
                it->second->classification;
            if (clo.cls == core::RaceClass::SpecViolated &&
                chi.cls != core::RaceClass::SpecViolated) {
                viol += (viol.empty() ? "" : "; ") + std::string(
                    "race on ") +
                    prog.cellName(rep.cluster.representative.cell) +
                    " is spec-violated at k=1 but " +
                    core::raceClassName(chi.cls) +
                    " at the full budget";
            } else if (clo.cls == core::RaceClass::KWitnessHarmless &&
                       chi.cls ==
                           core::RaceClass::KWitnessHarmless &&
                       chi.k < clo.k) {
                viol += (viol.empty() ? "" : "; ") + std::string(
                    "k shrank from ") +
                    std::to_string(clo.k) + " to " +
                    std::to_string(chi.k) + " on " +
                    prog.cellName(rep.cluster.representative.cell);
            }
        }
        check("k-monotonicity", viol.empty(), viol);
    }

    // -- Symbolic-input monotonicity + witness replay ----------------
    // Making declared inputs symbolic may only *upgrade* verdicts:
    // the single-path stage-1 baseline witnesses one concrete
    // (input, schedule) point, and every path the symbolic forker
    // adds is another feasible point, so a decisive stage-1 verdict
    // (spec violated / output differs) can never become harmless.
    // The comparison deliberately uses the stage-1 baseline, not the
    // full legacy run: two full multi-path runs with different
    // symbol sets may truncate different path suffixes at the Mp
    // budget, which reorders — without shrinking — the witnessed
    // set. Any decisive symbolic verdict must also carry evidence
    // that replayEvidence reproduces byte-identically.
    if (!prog.inputs.empty()) {
        core::PortendOptions lo = full;
        lo.mp = 1;
        lo.ma = 1;
        lo.multi_path = false;
        lo.multi_schedule = false;
        core::PortendResult rl = core::Portend(prog, lo).run();

        core::PortendOptions so = full;
        for (const ir::InputDecl &d : prog.inputs)
            so.sym_inputs.push_back(
                rt::SymInputSpec{d.name, false, 0, 0});
        core::PortendResult rs = core::Portend(prog, so).run();

        const auto rank = [](core::RaceClass c) {
            switch (c) {
            case core::RaceClass::SpecViolated:
                return 4;
            case core::RaceClass::OutputDiffers:
                return 3;
            case core::RaceClass::KWitnessHarmless:
                return 2;
            case core::RaceClass::SingleOrdering:
                return 1;
            default:
                return 0;
            }
        };
        std::map<std::string, const core::PortendReport *> sym;
        for (const core::PortendReport &rep : rs.reports)
            sym[rep.cluster.representative.key()] = &rep;
        std::string viol;
        for (const core::PortendReport &rep : rl.reports) {
            if (rank(rep.classification.cls) < 3)
                continue; // only decisive stage-1 verdicts bind
            auto it = sym.find(rep.cluster.representative.key());
            if (it == sym.end())
                continue;
            if (rank(it->second->classification.cls) <
                rank(rep.classification.cls)) {
                viol += (viol.empty() ? "" : "; ") +
                        std::string("race on ") +
                        prog.cellName(
                            rep.cluster.representative.cell) +
                        " downgraded from " +
                        core::raceClassName(rep.classification.cls) +
                        " to " +
                        core::raceClassName(
                            it->second->classification.cls) +
                        " under symbolic inputs";
            }
        }
        check("sym-monotonicity", viol.empty(), viol);

        for (const core::PortendReport &rep : rs.reports) {
            for (const core::WitnessInput &w :
                 rep.classification.evidence_witness) {
                v.witness_text +=
                    (v.witness_text.empty() ? "" : " ") +
                    prog.cellName(rep.cluster.representative.cell) +
                    ":" + w.name + "=" + std::to_string(w.value);
            }
        }

        core::RaceAnalyzer analyzer(prog, so);
        const auto renderReplay =
            [](const core::RaceAnalyzer::EvidenceReplay &r) {
                std::string s = rt::runOutcomeName(r.outcome);
                s += "|" + r.detail + "|";
                for (const rt::OutputRecord &rec : r.output.records)
                    s += rec.toString() + "\n";
                return s;
            };
        std::string mismatch;
        for (const core::PortendReport &rep : rs.reports) {
            if (rank(rep.classification.cls) < 3)
                continue;
            core::RaceAnalyzer::EvidenceReplay a =
                analyzer.replayEvidence(rep.cluster.representative,
                                        rs.detection.trace,
                                        rep.classification);
            core::RaceAnalyzer::EvidenceReplay b =
                analyzer.replayEvidence(rep.cluster.representative,
                                        rs.detection.trace,
                                        rep.classification);
            if (renderReplay(a) != renderReplay(b)) {
                mismatch += (mismatch.empty() ? "" : "; ") +
                            std::string("replay of ") +
                            prog.cellName(
                                rep.cluster.representative.cell) +
                            " is not deterministic";
            }
        }
        check("witness-replay", mismatch.empty(), mismatch);
    }

    return v;
}

// -- Verdict cache payload (`portend-fuzz-verdict-v1`) ---------------
//
// Length-prefixed blocks: `tag <len>\n<len raw bytes>\n` for every
// string field (trace/report text embed newlines, so line-based
// formats cannot carry them), `tag <int>\n` for counters. Field order
// is fixed; the reader consumes exactly that order and rejects
// anything else.

namespace {

constexpr const char *kVerdictMagic = "portend-fuzz-verdict-v1";

void
putNum(std::string &out, const char *tag, long long v)
{
    out += tag;
    out += ' ';
    out += std::to_string(v);
    out += '\n';
}

void
putBlock(std::string &out, const char *tag, const std::string &bytes)
{
    putNum(out, tag, static_cast<long long>(bytes.size()));
    out += bytes;
    out += '\n';
}

/** Strict non-negative-leading-digits integer parse (no stoll: a
 *  malformed payload must yield nullopt, never a throw). */
bool
parseNum(const std::string &s, long long *out)
{
    std::size_t i = 0;
    bool neg = false;
    if (!s.empty() && s[0] == '-') {
        neg = true;
        i = 1;
    }
    if (i >= s.size())
        return false;
    long long v = 0;
    for (; i < s.size(); ++i) {
        if (s[i] < '0' || s[i] > '9')
            return false;
        v = v * 10 + (s[i] - '0');
    }
    *out = neg ? -v : v;
    return true;
}

/** Sequential field reader over one serialized verdict. */
struct VerdictReader
{
    const std::string &text;
    std::size_t pos = 0;
    std::string err;

    bool fail(const std::string &what)
    {
        if (err.empty())
            err = what;
        return false;
    }

    bool line(std::string *out)
    {
        const std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos)
            return fail("truncated: missing newline");
        out->assign(text, pos, nl - pos);
        pos = nl + 1;
        return true;
    }

    bool num(const char *tag, long long *out)
    {
        std::string l;
        if (!line(&l))
            return false;
        const std::string prefix = std::string(tag) + " ";
        if (l.compare(0, prefix.size(), prefix) != 0)
            return fail(std::string("expected '") + tag + "' field");
        if (!parseNum(l.substr(prefix.size()), out))
            return fail(std::string("bad '") + tag + "' number");
        return true;
    }

    bool block(const char *tag, std::string *out)
    {
        long long n = 0;
        if (!num(tag, &n))
            return false;
        if (n < 0 || pos + static_cast<std::size_t>(n) + 1 > text.size())
            return fail(std::string("'") + tag +
                        "' block overruns payload");
        if (text[pos + static_cast<std::size_t>(n)] != '\n')
            return fail(std::string("'") + tag +
                        "' block not newline-terminated");
        out->assign(text, pos, static_cast<std::size_t>(n));
        pos += static_cast<std::size_t>(n) + 1;
        return true;
    }
};

} // namespace

std::string
serializeVerdict(const OracleVerdict &v)
{
    std::string out;
    out += kVerdictMagic;
    out += '\n';
    putBlock(out, "outcome", v.outcome);
    putNum(out, "distinct_races", v.distinct_races);
    putNum(out, "dynamic_races", v.dynamic_races);
    putNum(out, "class_counts",
           static_cast<long long>(v.class_counts.size()));
    for (const auto &[cls, n] : v.class_counts) {
        putBlock(out, "class", cls);
        putNum(out, "count", n);
    }
    putNum(out, "baseline_counts",
           static_cast<long long>(v.baseline_counts.size()));
    for (const auto &[name, n] : v.baseline_counts) {
        putBlock(out, "baseline", name);
        putNum(out, "count", n);
    }
    putNum(out, "checks", static_cast<long long>(v.checks.size()));
    for (const CheckResult &c : v.checks) {
        putBlock(out, "check", c.name);
        putNum(out, "ok", c.ok ? 1 : 0);
        putBlock(out, "detail", c.detail);
    }
    putBlock(out, "trace_text", v.trace_text);
    putBlock(out, "report_text", v.report_text);
    putBlock(out, "witness_text", v.witness_text);
    return out;
}

std::optional<OracleVerdict>
deserializeVerdict(const std::string &text, std::string *error)
{
    VerdictReader r{text};
    const auto bail = [&]() -> std::optional<OracleVerdict> {
        if (error)
            *error = r.err.empty() ? "malformed verdict payload"
                                   : r.err;
        return std::nullopt;
    };

    std::string magic;
    if (!r.line(&magic) || magic != kVerdictMagic) {
        r.fail("bad magic (want portend-fuzz-verdict-v1)");
        return bail();
    }
    OracleVerdict v;
    long long n = 0;
    if (!r.block("outcome", &v.outcome))
        return bail();
    if (!r.num("distinct_races", &n))
        return bail();
    v.distinct_races = static_cast<int>(n);
    if (!r.num("dynamic_races", &n))
        return bail();
    v.dynamic_races = static_cast<int>(n);

    if (!r.num("class_counts", &n) || n < 0)
        return bail();
    for (long long i = 0; i < n; ++i) {
        std::string cls;
        long long count = 0;
        if (!r.block("class", &cls) || !r.num("count", &count))
            return bail();
        v.class_counts[cls] = static_cast<int>(count);
    }
    if (!r.num("baseline_counts", &n) || n < 0)
        return bail();
    for (long long i = 0; i < n; ++i) {
        std::string name;
        long long count = 0;
        if (!r.block("baseline", &name) || !r.num("count", &count))
            return bail();
        v.baseline_counts[name] = static_cast<int>(count);
    }
    if (!r.num("checks", &n) || n < 0)
        return bail();
    for (long long i = 0; i < n; ++i) {
        CheckResult c;
        long long ok = 0;
        if (!r.block("check", &c.name) || !r.num("ok", &ok) ||
            !r.block("detail", &c.detail))
            return bail();
        c.ok = ok != 0;
        v.checks.push_back(std::move(c));
    }
    if (!r.block("trace_text", &v.trace_text))
        return bail();
    if (!r.block("report_text", &v.report_text))
        return bail();
    if (!r.block("witness_text", &v.witness_text))
        return bail();
    if (r.pos != text.size()) {
        r.fail("trailing bytes after witness_text");
        return bail();
    }
    return v;
}

} // namespace portend::fuzz
