/**
 * @file
 * Generative fuzzing of PIL programs.
 *
 * The generator assembles random-but-well-formed concurrent PIL
 * programs from the racy idioms in workloads/patterns.h plus a set
 * of properly synchronized decorations (mutex-protected counters,
 * barriers, condition-variable handshakes, atomic counters,
 * yield/sleep noise). Every program is described first as a
 * ProgramRecipe — a small, serializable construction plan — and only
 * then lowered to IR, so the delta-debugging minimizer can shrink
 * the *plan* and regenerate, instead of hacking at instructions.
 *
 * Determinism contract: a recipe is a pure function of
 * (fuzz_seed, index, GeneratorOptions), and the lowered program is a
 * pure function of the recipe. Identical seeds therefore yield
 * byte-identical serialized programs, which is what makes fuzz
 * campaigns replayable and corpora diffable.
 *
 * Deadlock freedom by construction: every blocking construct
 * (spin-flag wait, condition-variable handshake) waits on a thread
 * with a *smaller* index, and barriers are emitted at worker entry
 * before any blocking pattern. Blocking edges then always point from
 * higher to lower thread indices, so a cycle is impossible and every
 * generated program terminates under any fair schedule (the racy
 * idioms themselves may still crash in an alternate ordering — that
 * is the point).
 */

#ifndef PORTEND_FUZZ_GENERATOR_H
#define PORTEND_FUZZ_GENERATOR_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/program.h"
#include "support/rng.h"
#include "workloads/workload.h"

namespace portend::fuzz {

/** The racy idioms the generator can draw from (workloads/patterns.h). */
enum class PatternKind : std::uint8_t {
    SpinFlag,        ///< ad-hoc sync: flag + data races ("single ordering")
    SpinFlagOnly,    ///< ad-hoc sync: flag race only
    PrintedValue,    ///< racy value reaches the output ("output differs")
    InputGatedPrint, ///< output difference behind an input gate
    LogOrder,        ///< post-race log interleaving (multi-schedule)
    LastWriter,      ///< both sides store their id ("k-witness")
    OverflowCrash,   ///< index overflow crash ("spec violated")
};

/** Number of PatternKind values. */
inline constexpr int kNumPatternKinds =
    static_cast<int>(PatternKind::OverflowCrash) + 1;

/** Printable pattern name (also the idiom label in fuzz summaries). */
const char *patternKindName(PatternKind k);

/** Properly synchronized decorations (no races, extra sync surface). */
enum class DecorKind : std::uint8_t {
    MutexCounter,  ///< both threads bump a counter under one mutex
    Barrier,       ///< both threads meet at a barrier (worker entry)
    CondHandshake, ///< lost-wakeup-safe cond-var producer/consumer
    AtomicCounter, ///< both threads AtomicRmW one cell
    YieldNoise,    ///< extra scheduling points
    SleepNoise,    ///< virtual-time skew between the threads
};

/** Number of DecorKind values. */
inline constexpr int kNumDecorKinds =
    static_cast<int>(DecorKind::SleepNoise) + 1;

/** Printable decoration name (also the idiom label in summaries). */
const char *decorKindName(DecorKind k);

/** One racy pattern instance between two worker threads. */
struct PatternSpec
{
    PatternKind kind = PatternKind::LastWriter;
    int producer = 0;       ///< worker index of the first accessor
    int consumer = 1;       ///< worker index of the second accessor
    std::int64_t param = 0; ///< kind-specific knob (value/pad/size)

    bool operator==(const PatternSpec &o) const = default;
};

/** One synchronized decoration between two worker threads. */
struct DecorSpec
{
    DecorKind kind = DecorKind::MutexCounter;
    int a = 0;              ///< first participating worker
    int b = 1;              ///< second participating worker
    std::int64_t param = 0; ///< kind-specific knob (iterations/ticks)

    bool operator==(const DecorSpec &o) const = default;
};

/**
 * A complete construction plan for one generated program. Recipes
 * serialize to a single text line (stored in corpus metadata) so a
 * reproducer records not just the program but how to regrow it.
 */
struct ProgramRecipe
{
    std::string name;  ///< program name ("fuzz_s<seed>_i<index>")
    int workers = 2;   ///< spawned worker threads
    std::vector<PatternSpec> patterns;
    std::vector<DecorSpec> decors;

    /** One-line text form (see deserializeRecipe). */
    std::string serialize() const;

    bool operator==(const ProgramRecipe &o) const = default;
};

/** Parse ProgramRecipe::serialize output; nullopt when malformed. */
std::optional<ProgramRecipe>
deserializeRecipe(const std::string &text);

/** Knobs for recipe randomization. */
struct GeneratorOptions
{
    int min_workers = 2;  ///< at least 2 (races need two threads)
    int max_workers = 4;
    int max_patterns = 3; ///< racy patterns per program (>= 1)
    int max_decors = 3;   ///< synchronized decorations per program
    bool allow_inputs = true; ///< permit InputGatedPrint (adds Input)
};

/**
 * Draw a random recipe. All randomness flows through @p rng; the
 * caller seeds it from (fuzz_seed, index) to make campaigns
 * deterministic and individual programs addressable.
 */
ProgramRecipe randomRecipe(const std::string &name, Rng &rng,
                           const GeneratorOptions &opts);

/** A lowered recipe: the program plus its construction metadata. */
struct GeneratedProgram
{
    ProgramRecipe recipe;
    ir::Program program;

    /** Ground truth of every emitted pattern, in emission order. */
    std::vector<workloads::ExpectedRace> expected;

    /** Sorted, de-duplicated idiom labels present in the program. */
    std::vector<std::string> idioms;

    /** Verifier diagnostics; non-empty means the generator emitted a
     *  structurally invalid program (itself a fuzzing finding). */
    std::vector<std::string> verify_errors;
};

/**
 * Lower @p recipe to a PIL program. Never aborts: structural
 * problems land in GeneratedProgram::verify_errors so the fuzzer
 * can flag (and minimize) generator bugs like any other finding.
 */
GeneratedProgram buildProgram(const ProgramRecipe &recipe);

/** Convenience: seed-addressable generation used by the campaign. */
GeneratedProgram generateProgram(std::uint64_t fuzz_seed,
                                 std::uint64_t index,
                                 const GeneratorOptions &opts);

} // namespace portend::fuzz

#endif // PORTEND_FUZZ_GENERATOR_H
