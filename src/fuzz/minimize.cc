#include "fuzz/minimize.h"

#include <algorithm>
#include <map>
#include <set>

namespace portend::fuzz {

namespace {

/** Remap worker indices so only referenced threads remain. */
ProgramRecipe
compactWorkers(const ProgramRecipe &r)
{
    std::set<int> used;
    for (const PatternSpec &p : r.patterns) {
        used.insert(p.producer);
        used.insert(p.consumer);
    }
    for (const DecorSpec &d : r.decors) {
        used.insert(d.a);
        used.insert(d.b);
    }
    std::map<int, int> remap;
    for (int w : used)
        remap[w] = static_cast<int>(remap.size());

    ProgramRecipe out = r;
    out.workers = std::max(2, static_cast<int>(remap.size()));
    for (PatternSpec &p : out.patterns) {
        p.producer = remap[p.producer];
        p.consumer = remap[p.consumer];
    }
    for (DecorSpec &d : out.decors) {
        d.a = remap[d.a];
        d.b = remap[d.b];
    }
    return out;
}

/** Canonical smallest parameter for an atom kind. */
std::int64_t
minimalPatternParam(PatternKind k)
{
    switch (k) {
      case PatternKind::SpinFlag:
      case PatternKind::SpinFlagOnly:
      case PatternKind::LogOrder:
        return 0;
      case PatternKind::PrintedValue:
      case PatternKind::InputGatedPrint:
      case PatternKind::LastWriter:
        return 1;
      case PatternKind::OverflowCrash:
        return 2; // smallest legal table
    }
    return 0;
}

std::int64_t
minimalDecorParam(DecorKind k)
{
    switch (k) {
      case DecorKind::Barrier:
      case DecorKind::CondHandshake:
        return 0;
      default:
        return 1;
    }
}

} // namespace

MinimizeResult
minimizeRecipe(const ProgramRecipe &start, const RecipePredicate &pred,
               const MinimizeOptions &opts)
{
    MinimizeResult res;
    res.recipe = start;

    auto probe = [&](const ProgramRecipe &candidate) {
        if (res.probes >= opts.max_probes)
            return false;
        res.probes += 1;
        return pred(candidate);
    };

    if (!probe(start))
        return res; // caller handed us an uninteresting start

    // Phase 1: 1-minimal atom removal. Atoms are patterns then
    // decors; retry from scratch after every successful removal
    // (classic ddmin at granularity 1 — recipes are small enough
    // that the coarser passes buy nothing).
    bool changed = true;
    while (changed && res.probes < opts.max_probes) {
        changed = false;
        for (std::size_t i = 0; i < res.recipe.patterns.size(); ++i) {
            ProgramRecipe cand = res.recipe;
            cand.patterns.erase(cand.patterns.begin() +
                                static_cast<std::ptrdiff_t>(i));
            if (probe(cand)) {
                res.recipe = cand;
                changed = true;
                break;
            }
        }
        if (changed)
            continue;
        for (std::size_t i = 0; i < res.recipe.decors.size(); ++i) {
            ProgramRecipe cand = res.recipe;
            cand.decors.erase(cand.decors.begin() +
                              static_cast<std::ptrdiff_t>(i));
            if (probe(cand)) {
                res.recipe = cand;
                changed = true;
                break;
            }
        }
    }

    // Phase 2: drop unreferenced worker threads.
    {
        ProgramRecipe cand = compactWorkers(res.recipe);
        if (!(cand == res.recipe) && probe(cand))
            res.recipe = cand;
    }

    // Phase 3: shrink parameters to their canonical minimum.
    for (std::size_t i = 0; i < res.recipe.patterns.size(); ++i) {
        std::int64_t want = minimalPatternParam(
            res.recipe.patterns[i].kind);
        if (res.recipe.patterns[i].param == want)
            continue;
        ProgramRecipe cand = res.recipe;
        cand.patterns[i].param = want;
        if (probe(cand))
            res.recipe = cand;
    }
    for (std::size_t i = 0; i < res.recipe.decors.size(); ++i) {
        std::int64_t want =
            minimalDecorParam(res.recipe.decors[i].kind);
        if (res.recipe.decors[i].param == want)
            continue;
        ProgramRecipe cand = res.recipe;
        cand.decors[i].param = want;
        if (probe(cand))
            res.recipe = cand;
    }

    res.one_minimal = res.probes < opts.max_probes;
    return res;
}

} // namespace portend::fuzz
