#include "fuzz/generator.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "ir/builder.h"
#include "ir/verifier.h"
#include "support/hash.h"
#include "support/str.h"
#include "workloads/patterns.h"

using portend::ir::I;
using portend::ir::R;
using K = portend::sym::ExprKind;

namespace portend::fuzz {

const char *
patternKindName(PatternKind k)
{
    switch (k) {
      case PatternKind::SpinFlag: return "spin-flag";
      case PatternKind::SpinFlagOnly: return "spin-flag-only";
      case PatternKind::PrintedValue: return "printed-value";
      case PatternKind::InputGatedPrint: return "input-gated-print";
      case PatternKind::LogOrder: return "log-order";
      case PatternKind::LastWriter: return "last-writer";
      case PatternKind::OverflowCrash: return "overflow-crash";
    }
    return "?";
}

const char *
decorKindName(DecorKind k)
{
    switch (k) {
      case DecorKind::MutexCounter: return "mutex-counter";
      case DecorKind::Barrier: return "barrier";
      case DecorKind::CondHandshake: return "cond-handshake";
      case DecorKind::AtomicCounter: return "atomic-counter";
      case DecorKind::YieldNoise: return "yield-noise";
      case DecorKind::SleepNoise: return "sleep-noise";
    }
    return "?";
}

namespace {

/** True when the pattern's consumer busy-waits on the producer. */
bool
isBlockingPattern(PatternKind k)
{
    return k == PatternKind::SpinFlag || k == PatternKind::SpinFlagOnly;
}

std::optional<PatternKind>
patternKindFromName(const std::string &n)
{
    for (int i = 0; i < kNumPatternKinds; ++i) {
        PatternKind k = static_cast<PatternKind>(i);
        if (n == patternKindName(k))
            return k;
    }
    return std::nullopt;
}

std::optional<DecorKind>
decorKindFromName(const std::string &n)
{
    for (int i = 0; i < kNumDecorKinds; ++i) {
        DecorKind k = static_cast<DecorKind>(i);
        if (n == decorKindName(k))
            return k;
    }
    return std::nullopt;
}

} // namespace

std::string
ProgramRecipe::serialize() const
{
    std::ostringstream os;
    os << "recipe v1 " << name << " " << workers;
    for (const PatternSpec &p : patterns) {
        os << " pat:" << patternKindName(p.kind) << ":" << p.producer
           << ":" << p.consumer << ":" << p.param;
    }
    for (const DecorSpec &d : decors) {
        os << " dec:" << decorKindName(d.kind) << ":" << d.a << ":"
           << d.b << ":" << d.param;
    }
    return os.str();
}

std::optional<ProgramRecipe>
deserializeRecipe(const std::string &text)
{
    std::istringstream is(text);
    std::string tag, ver;
    ProgramRecipe r;
    if (!(is >> tag >> ver >> r.name >> r.workers) || tag != "recipe" ||
        ver != "v1" || r.workers < 1 || r.workers > 64) {
        return std::nullopt;
    }
    std::string tok;
    while (is >> tok) {
        std::vector<std::string> f = split(tok, ':');
        if (f.size() != 5)
            return std::nullopt;
        int x = 0, y = 0;
        std::int64_t param = 0;
        try {
            x = std::stoi(f[2]);
            y = std::stoi(f[3]);
            param = std::stoll(f[4]);
        } catch (const std::exception &) {
            return std::nullopt;
        }
        if (x < 0 || x >= r.workers || y < 0 || y >= r.workers || x == y)
            return std::nullopt;
        if (f[0] == "pat") {
            std::optional<PatternKind> k = patternKindFromName(f[1]);
            if (!k)
                return std::nullopt;
            r.patterns.push_back(PatternSpec{*k, x, y, param});
        } else if (f[0] == "dec") {
            std::optional<DecorKind> k = decorKindFromName(f[1]);
            if (!k)
                return std::nullopt;
            r.decors.push_back(DecorSpec{*k, x, y, param});
        } else {
            return std::nullopt;
        }
    }
    return r;
}

ProgramRecipe
randomRecipe(const std::string &name, Rng &rng,
             const GeneratorOptions &opts)
{
    ProgramRecipe r;
    r.name = name;
    const int lo = std::max(2, opts.min_workers);
    const int hi = std::max(lo, opts.max_workers);
    r.workers = static_cast<int>(rng.range(lo, hi));

    const int n_pat =
        static_cast<int>(rng.range(1, std::max(1, opts.max_patterns)));
    for (int i = 0; i < n_pat; ++i) {
        PatternSpec p;
        do {
            p.kind = static_cast<PatternKind>(
                rng.below(static_cast<std::uint64_t>(kNumPatternKinds)));
        } while (p.kind == PatternKind::InputGatedPrint &&
                 !opts.allow_inputs);
        p.producer = static_cast<int>(rng.below(r.workers));
        do {
            p.consumer = static_cast<int>(rng.below(r.workers));
        } while (p.consumer == p.producer);
        // Blocking waits must point at smaller thread indices
        // (deadlock freedom; see the file comment).
        if (isBlockingPattern(p.kind) && p.producer > p.consumer)
            std::swap(p.producer, p.consumer);
        switch (p.kind) {
          case PatternKind::SpinFlag:
          case PatternKind::SpinFlagOnly:
            p.param = rng.range(0, 2); // producer-side delay
            break;
          case PatternKind::PrintedValue:
          case PatternKind::InputGatedPrint:
          case PatternKind::LastWriter:
            p.param = rng.range(1, 99); // published value
            break;
          case PatternKind::LogOrder:
            p.param = 0;
            break;
          case PatternKind::OverflowCrash:
            p.param = rng.range(2, 4); // table size
            break;
        }
        r.patterns.push_back(p);
    }

    const int n_dec =
        static_cast<int>(rng.range(0, std::max(0, opts.max_decors)));
    for (int i = 0; i < n_dec; ++i) {
        DecorSpec d;
        d.kind = static_cast<DecorKind>(
            rng.below(static_cast<std::uint64_t>(kNumDecorKinds)));
        d.a = static_cast<int>(rng.below(r.workers));
        do {
            d.b = static_cast<int>(rng.below(r.workers));
        } while (d.b == d.a);
        // The cond consumer (b) waits on the producer (a); keep the
        // wait pointing at a smaller index. Barriers are symmetric
        // but a canonical order keeps recipes comparable.
        if (d.a > d.b)
            std::swap(d.a, d.b);
        switch (d.kind) {
          case DecorKind::MutexCounter:
            d.param = rng.range(1, 3); // bumps per thread
            break;
          case DecorKind::Barrier:
          case DecorKind::CondHandshake:
            d.param = 0;
            break;
          case DecorKind::AtomicCounter:
            d.param = rng.range(1, 5); // increment
            break;
          case DecorKind::YieldNoise:
            d.param = rng.range(1, 3); // yields per thread
            break;
          case DecorKind::SleepNoise:
            d.param = rng.range(1, 5); // virtual ticks
            break;
        }
        r.decors.push_back(d);
    }
    return r;
}

namespace {

/** Emits one recipe into a ProgramBuilder. */
class RecipeLowering
{
  public:
    explicit RecipeLowering(const ProgramRecipe &recipe)
        : recipe(recipe), pb(recipe.name)
    {}

    GeneratedProgram
    run()
    {
        GeneratedProgram out;
        out.recipe = recipe;

        for (int w = 0; w < recipe.workers; ++w) {
            ir::FunctionBuilder &f =
                pb.function("w" + std::to_string(w), 1);
            f.file("fuzz.cpp").line(10 + w);
            f.to(f.block("entry"));
            fbs.push_back(&f);
        }

        // Barriers first (worker entry), then the remaining
        // decorations, then the racy patterns: every blocking wait
        // is preceded only by constructs that complete (see the
        // deadlock-freedom argument in generator.h).
        for (std::size_t i = 0; i < recipe.decors.size(); ++i) {
            if (recipe.decors[i].kind == DecorKind::Barrier)
                emitDecor(static_cast<int>(i), recipe.decors[i]);
        }
        for (std::size_t i = 0; i < recipe.decors.size(); ++i) {
            if (recipe.decors[i].kind != DecorKind::Barrier)
                emitDecor(static_cast<int>(i), recipe.decors[i]);
        }
        for (std::size_t i = 0; i < recipe.patterns.size(); ++i)
            emitPattern(static_cast<int>(i), recipe.patterns[i],
                        out.expected);

        for (ir::FunctionBuilder *f : fbs)
            f->retVoid();

        ir::FunctionBuilder &m = pb.function("main", 0);
        m.file("fuzz.cpp").line(100);
        m.to(m.block("entry"));
        // Input-gated configuration is written before any spawn, so
        // reading it in a worker is ordered (no extra race).
        for (const auto &[gate, label] : gates) {
            ir::Reg v = m.input(label, 0, 1);
            m.store(gate, I(0), R(v));
        }
        std::vector<ir::Reg> tids;
        for (int w = 0; w < recipe.workers; ++w)
            tids.push_back(m.threadCreate("w" + std::to_string(w), I(0)));
        for (ir::Reg t : tids)
            m.threadJoin(R(t));
        m.outputStr("fuzz:done");
        m.halt();

        out.program = pb.build(/*verify=*/false);
        out.verify_errors = ir::verifyProgram(out.program);
        out.idioms = collectIdioms();
        return out;
    }

  private:
    void
    emitDecor(int i, const DecorSpec &d)
    {
        const std::string tag = "d" + std::to_string(i);
        ir::FunctionBuilder &fa = *fbs[d.a];
        ir::FunctionBuilder &fb = *fbs[d.b];
        switch (d.kind) {
          case DecorKind::Barrier: {
            ir::SyncId bar = pb.barrier(tag + "_bar", 2);
            fa.barrierWait(bar);
            fb.barrierWait(bar);
            break;
          }
          case DecorKind::MutexCounter: {
            ir::SyncId mu = pb.mutex(tag + "_mu");
            ir::GlobalId cnt = pb.global(tag + "_cnt");
            for (ir::FunctionBuilder *f : {&fa, &fb}) {
                f->lock(mu);
                for (std::int64_t n = 0; n < std::max<std::int64_t>(
                                                 1, d.param);
                     ++n) {
                    ir::Reg v = f->load(cnt);
                    f->store(cnt, I(0),
                             R(f->bin(K::Add, R(v), I(1))));
                }
                f->unlock(mu);
            }
            break;
          }
          case DecorKind::CondHandshake: {
            // Lost-wakeup-safe handshake: the state cell is only
            // touched under the mutex, so it adds no race.
            ir::SyncId mu = pb.mutex(tag + "_hm");
            ir::SyncId cv = pb.cond(tag + "_hc");
            ir::GlobalId ready = pb.global(tag + "_ready");
            fa.lock(mu);
            fa.store(ready, I(0), I(1));
            fa.condSignal(cv);
            fa.unlock(mu);

            fb.lock(mu);
            ir::BlockId chk = fb.block(tag + "_chk");
            ir::BlockId wait = fb.block(tag + "_wait");
            ir::BlockId done = fb.block(tag + "_done");
            fb.jmp(chk);
            fb.to(chk);
            ir::Reg rdy = fb.load(ready);
            fb.br(R(rdy), done, wait);
            fb.to(wait);
            fb.condWait(cv, mu);
            fb.jmp(chk);
            fb.to(done);
            fb.unlock(mu);
            break;
          }
          case DecorKind::AtomicCounter: {
            ir::GlobalId cnt = pb.global(tag + "_acnt");
            fa.atomicAdd(cnt, I(0), I(d.param));
            fb.atomicAdd(cnt, I(0), I(d.param));
            break;
          }
          case DecorKind::YieldNoise:
            for (std::int64_t n = 0;
                 n < std::max<std::int64_t>(1, d.param); ++n) {
                fa.yield();
                fb.yield();
            }
            break;
          case DecorKind::SleepNoise:
            fa.sleep(I(std::max<std::int64_t>(1, d.param)));
            break;
        }
    }

    void
    emitPattern(int i, const PatternSpec &p,
                std::vector<workloads::ExpectedRace> &expected)
    {
        const std::string tag = "p" + std::to_string(i);
        workloads::PatternCtx ctx{&pb, fbs[p.producer],
                                  fbs[p.consumer]};
        switch (p.kind) {
          case PatternKind::SpinFlag: {
            auto [flag, data] = workloads::emitSpinFlag(
                ctx, tag, static_cast<int>(p.param));
            expected.push_back(flag);
            expected.push_back(data);
            break;
          }
          case PatternKind::SpinFlagOnly:
            expected.push_back(workloads::emitSpinFlagOnly(
                ctx, tag, static_cast<int>(p.param)));
            break;
          case PatternKind::PrintedValue:
            expected.push_back(
                workloads::emitPrintedValueRace(ctx, tag, p.param));
            break;
          case PatternKind::InputGatedPrint: {
            ir::GlobalId gate = pb.global(tag + "_cfg");
            gates.push_back({gate, tag + "_gate"});
            expected.push_back(workloads::emitInputGatedPrintRace(
                ctx, tag, p.param, gate));
            break;
          }
          case PatternKind::LogOrder:
            expected.push_back(workloads::emitLogOrderRace(ctx, tag));
            break;
          case PatternKind::LastWriter:
            expected.push_back(workloads::emitLastWriterRace(
                ctx, tag, p.param, p.param + 1));
            break;
          case PatternKind::OverflowCrash:
            expected.push_back(workloads::emitOverflowCrashRace(
                ctx, tag, static_cast<int>(std::max<std::int64_t>(
                              2, p.param))));
            break;
        }
    }

    std::vector<std::string>
    collectIdioms() const
    {
        std::set<std::string> s;
        s.insert("thread-join"); // main always spawns and joins
        for (const PatternSpec &p : recipe.patterns)
            s.insert(patternKindName(p.kind));
        for (const DecorSpec &d : recipe.decors)
            s.insert(decorKindName(d.kind));
        return {s.begin(), s.end()};
    }

    const ProgramRecipe &recipe;
    ir::ProgramBuilder pb;
    std::vector<ir::FunctionBuilder *> fbs;
    std::vector<std::pair<ir::GlobalId, std::string>> gates;
};

} // namespace

GeneratedProgram
buildProgram(const ProgramRecipe &recipe)
{
    // Reject structurally unusable recipes up front (hand-written or
    // minimizer-produced) instead of indexing out of range below.
    auto bad = [&](const std::string &msg) {
        GeneratedProgram out;
        out.recipe = recipe;
        out.verify_errors.push_back("recipe: " + msg);
        return out;
    };
    if (recipe.workers < 2 || recipe.workers > 64)
        return bad("worker count out of range");
    for (const PatternSpec &p : recipe.patterns) {
        if (p.producer < 0 || p.producer >= recipe.workers ||
            p.consumer < 0 || p.consumer >= recipe.workers ||
            p.producer == p.consumer) {
            return bad("pattern thread indices invalid");
        }
    }
    for (const DecorSpec &d : recipe.decors) {
        if (d.a < 0 || d.a >= recipe.workers || d.b < 0 ||
            d.b >= recipe.workers || d.a == d.b) {
            return bad("decor thread indices invalid");
        }
    }
    return RecipeLowering(recipe).run();
}

GeneratedProgram
generateProgram(std::uint64_t fuzz_seed, std::uint64_t index,
                const GeneratorOptions &opts)
{
    // Explicit std::string: the literal would otherwise decay into
    // the (data, len) overload with fuzz_seed as the byte count.
    Rng rng(hashCombine(
        hashCombine(fnv1a(std::string("portend-fuzz")), fuzz_seed),
        index));
    std::string name = "fuzz_s" + std::to_string(fuzz_seed) + "_i" +
                       std::to_string(index);
    return buildProgram(randomRecipe(name, rng, opts));
}

} // namespace portend::fuzz
