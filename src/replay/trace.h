/**
 * @file
 * Schedule traces and the input log.
 *
 * A trace is the paper's record of an execution (§3.1): the thread
 * id and program counter at each preemption point, plus the log of
 * system-call inputs (Input/GetTime values). Together with the
 * program, a trace deterministically reproduces a run:
 * (T0:pc0) -> (T1 -> RaceyAccessT1:pc1) -> (T2 -> RaceyAccessT2:pc2).
 */

#ifndef PORTEND_REPLAY_TRACE_H
#define PORTEND_REPLAY_TRACE_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rt/vmstate.h"

namespace portend::replay {

/** One scheduling decision: thread @p tid resumed at @p pc. */
struct SchedDecision
{
    rt::ThreadId tid = -1;
    int pc = -1;             ///< pc of the first instruction executed
    std::uint64_t step = 0;  ///< global step at the decision

    bool operator==(const SchedDecision &o) const = default;
};

/**
 * A recorded execution: scheduling decisions plus environment
 * inputs. Serializable so traces can be stored in bug reports and
 * replayed later (paper §3.6).
 */
struct ScheduleTrace
{
    std::vector<SchedDecision> decisions;
    std::vector<rt::VmState::EnvRead> inputs;

    /** Concrete input values, in consumption order. */
    std::vector<std::int64_t> concreteInputs() const;

    /** Text form: one line per decision / input. */
    std::string serialize() const;

    /** Parse the text form; nullopt on malformed input. */
    static std::optional<ScheduleTrace>
    deserialize(const std::string &text);

    /** Paper-style one-line rendering of the first @p n decisions. */
    std::string summary(std::size_t n = 8) const;

    bool operator==(const ScheduleTrace &o) const;
};

} // namespace portend::replay

#endif // PORTEND_REPLAY_TRACE_H
