/**
 * @file
 * Record/replay scheduling policies.
 *
 * Three policies make up Portend's record/replay engine:
 *
 *  - RecordingPolicy decorates any policy and writes the schedule
 *    trace while the program runs.
 *  - TracePolicy replays a recorded trace. Its cursor is derived
 *    from the VM state's preemption-point counter, so a forked or
 *    checkpointed state resumes replay at exactly the right
 *    decision. Strict mode aborts on divergence (used pre-race);
 *    Tolerant mode falls back to an inner policy (used post-race,
 *    paper §3.3's partial trace matching).
 *  - AlternatePolicy enforces the *alternate* ordering of a racing
 *    access pair (Algorithm 1 line 6): it holds the original first
 *    accessor until the second accessor touches the racing cell,
 *    then hands over to a configurable post-race policy.
 */

#ifndef PORTEND_REPLAY_REPLAYER_H
#define PORTEND_REPLAY_REPLAYER_H

#include "ir/program.h"
#include "race/report.h"
#include "replay/trace.h"
#include "rt/policy.h"

namespace portend::replay {

/**
 * Wraps an inner policy, recording every decision into a trace.
 */
class RecordingPolicy : public rt::SchedulePolicy
{
  public:
    /**
     * @param prog  program being executed (to resolve next pcs)
     * @param inner the decision maker (non-owning)
     * @param out   trace receiving decisions (non-owning)
     */
    RecordingPolicy(const ir::Program &prog, rt::SchedulePolicy *inner,
                    ScheduleTrace *out)
        : prog(prog), inner(inner), out(out)
    {}

    rt::ThreadId pick(const rt::VmState &state,
                      const std::vector<rt::ThreadId> &runnable) override;

    void
    onEvent(const rt::Event &ev) override
    {
        inner->onEvent(ev);
    }

    /** Copy the environment log into the trace after the run. */
    static void captureInputs(const rt::VmState &state,
                              ScheduleTrace *out);

  private:
    const ir::Program &prog;
    rt::SchedulePolicy *inner;
    ScheduleTrace *out;
};

/**
 * Replays a schedule trace.
 */
class TracePolicy : public rt::SchedulePolicy
{
  public:
    /** Divergence handling. */
    enum class Mode {
        Strict,   ///< abort the execution on any divergence
        Tolerant, ///< fall back to the inner policy and continue
    };

    /**
     * @param trace    decisions to follow
     * @param mode     divergence handling
     * @param fallback policy used past the trace end or (in
     *                 Tolerant mode) on divergence; non-owning;
     *                 may be null only in Strict mode
     */
    TracePolicy(const ScheduleTrace &trace, Mode mode,
                rt::SchedulePolicy *fallback = nullptr)
        : trace(trace), mode(mode), fallback(fallback)
    {}

    rt::ThreadId pick(const rt::VmState &state,
                      const std::vector<rt::ThreadId> &runnable) override;

    /** Number of decisions that could not be followed. */
    int divergences() const { return diverged; }

  private:
    const ScheduleTrace &trace;
    Mode mode;
    rt::SchedulePolicy *fallback;
    int diverged = 0;
};

/**
 * Enforces the alternate ordering of one racing pair, starting from
 * a state stopped just before the first racing access.
 *
 * After the ordering is enforced, the post-race schedule can either
 * continue following the original trace (shifted past the decisions
 * consumed while holding — the deterministic single-alternate of
 * Algorithm 1, which keeps orderings unrelated to the race intact)
 * or hand over to an arbitrary policy (randomized multi-schedule
 * analysis, §3.4).
 */
class AlternatePolicy : public rt::SchedulePolicy
{
  public:
    /**
     * @param race       race whose access order is reversed
     * @param post       policy for post-race decisions the trace
     *                   cannot answer (non-owning)
     * @param post_trace original schedule trace to keep following
     *                   after enforcement (may be null)
     */
    AlternatePolicy(const race::RaceReport &race,
                    rt::SchedulePolicy *post,
                    const ScheduleTrace *post_trace = nullptr)
        : race(race), post(post), post_trace(post_trace)
    {}

    rt::ThreadId pick(const rt::VmState &state,
                      const std::vector<rt::ThreadId> &runnable) override;

    void onEvent(const rt::Event &ev) override;

    /** True once the second accessor touched the racing cell. */
    bool enforced() const { return released; }

    /** True when holding starved the schedule (paper case (b)). */
    bool starved() const { return starved_; }

  private:
    race::RaceReport race;
    rt::SchedulePolicy *post;
    const ScheduleTrace *post_trace;
    std::uint64_t hold_picks = 0;
    bool released = false;
    bool starved_ = false;
};

} // namespace portend::replay

#endif // PORTEND_REPLAY_REPLAYER_H
