#include "replay/trace.h"

#include <sstream>

#include "support/str.h"

namespace portend::replay {

std::vector<std::int64_t>
ScheduleTrace::concreteInputs() const
{
    std::vector<std::int64_t> out;
    out.reserve(inputs.size());
    for (const auto &r : inputs)
        out.push_back(r.value);
    return out;
}

std::string
ScheduleTrace::serialize() const
{
    std::ostringstream os;
    os << "trace v1\n";
    for (const auto &d : decisions)
        os << "d " << d.tid << " " << d.pc << " " << d.step << "\n";
    for (const auto &r : inputs) {
        os << "i " << (r.symbolic ? 1 : 0) << " " << r.sym_id << " "
           << r.value << "\n";
    }
    return os.str();
}

std::optional<ScheduleTrace>
ScheduleTrace::deserialize(const std::string &text)
{
    ScheduleTrace t;
    std::istringstream is(text);
    std::string header;
    if (!std::getline(is, header) || header != "trace v1")
        return std::nullopt;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::string tag;
        ls >> tag;
        // Strict line shapes: truncated or overlong records and
        // out-of-range ids are malformed input (fuzzer-found cases),
        // not something to limp through.
        std::string trailing;
        if (tag == "d") {
            SchedDecision d;
            ls >> d.tid >> d.pc >> d.step;
            if (ls.fail() || ls >> trailing)
                return std::nullopt;
            if (d.tid < 0 || d.pc < -1)
                return std::nullopt;
            t.decisions.push_back(d);
        } else if (tag == "i") {
            int symbolic = 0;
            rt::VmState::EnvRead r;
            ls >> symbolic >> r.sym_id >> r.value;
            if (ls.fail() || ls >> trailing)
                return std::nullopt;
            if (r.sym_id < -1 || (symbolic != 0 && symbolic != 1))
                return std::nullopt;
            r.symbolic = symbolic != 0;
            t.inputs.push_back(r);
        } else {
            return std::nullopt;
        }
    }
    return t;
}

std::string
ScheduleTrace::summary(std::size_t n) const
{
    std::vector<std::string> parts;
    for (std::size_t i = 0; i < decisions.size() && i < n; ++i) {
        parts.push_back("(T" + std::to_string(decisions[i].tid) +
                        ":pc" + std::to_string(decisions[i].pc) + ")");
    }
    std::string out = join(parts, " -> ");
    if (decisions.size() > n)
        out += " -> ...";
    return out;
}

bool
ScheduleTrace::operator==(const ScheduleTrace &o) const
{
    if (decisions.size() != o.decisions.size() ||
        inputs.size() != o.inputs.size()) {
        return false;
    }
    for (std::size_t i = 0; i < decisions.size(); ++i) {
        if (!(decisions[i] == o.decisions[i]))
            return false;
    }
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        if (inputs[i].symbolic != o.inputs[i].symbolic ||
            inputs[i].sym_id != o.inputs[i].sym_id ||
            inputs[i].value != o.inputs[i].value) {
            return false;
        }
    }
    return true;
}

} // namespace portend::replay
