#include "replay/replayer.h"

#include "rt/decode.h"
#include "support/logging.h"

namespace portend::replay {

namespace {

/** Program counter of the next instruction of @p tid. */
int
nextPc(const ir::Program &prog, const rt::VmState &state,
       rt::ThreadId tid)
{
    const rt::ThreadState &t = state.thread(tid);
    if (t.stack->empty())
        return -1;
    const rt::Frame &f = t.stack->back();
    return rt::framePc(prog.function(f.func), f.ip);
}

} // namespace

rt::ThreadId
RecordingPolicy::pick(const rt::VmState &state,
                      const std::vector<rt::ThreadId> &runnable)
{
    rt::ThreadId tid = inner->pick(state, runnable);
    if (tid >= 0) {
        SchedDecision d;
        d.tid = tid;
        d.pc = nextPc(prog, state, tid);
        d.step = state.global_step;
        out->decisions.push_back(d);
    }
    return tid;
}

void
RecordingPolicy::captureInputs(const rt::VmState &state,
                               ScheduleTrace *out)
{
    out->inputs = state.env_log;
}

rt::ThreadId
TracePolicy::pick(const rt::VmState &state,
                  const std::vector<rt::ThreadId> &runnable)
{
    // Cursor derives from the state so forked/restored states resume
    // replay at the correct decision without policy-side bookkeeping.
    std::uint64_t idx = state.stats.preemption_points;
    if (idx < trace.decisions.size()) {
        const SchedDecision &d = trace.decisions[idx];
        for (rt::ThreadId t : runnable) {
            if (t == d.tid)
                return t;
        }
        // Recorded thread not runnable: divergence.
        diverged += 1;
        if (mode == Mode::Strict)
            return -1;
        PORTEND_ASSERT(fallback, "tolerant TracePolicy needs fallback");
        return fallback->pick(state, runnable);
    }
    // Past the end of the trace.
    if (mode == Mode::Strict && !fallback)
        return -1;
    if (fallback)
        return fallback->pick(state, runnable);
    return runnable.front();
}

rt::ThreadId
AlternatePolicy::pick(const rt::VmState &state,
                      const std::vector<rt::ThreadId> &runnable)
{
    if (released) {
        // Post-race: prefer the original trace, shifted past the
        // decisions the hold phase consumed, so orderings unrelated
        // to the reversed pair stay as recorded. One extra slot is
        // re-issued: the pre-race stop consumed the held thread's
        // scheduling slot without executing its segment.
        if (post_trace) {
            std::uint64_t skip = hold_picks + 1;
            std::uint64_t idx =
                state.stats.preemption_points >= skip
                    ? state.stats.preemption_points - skip
                    : 0;
            if (idx < post_trace->decisions.size()) {
                rt::ThreadId want = post_trace->decisions[idx].tid;
                for (rt::ThreadId t : runnable) {
                    if (t == want)
                        return t;
                }
            }
        }
        return post->pick(state, runnable);
    }

    // Hold the original first accessor; drive the second accessor
    // toward its racing access.
    hold_picks += 1;
    std::vector<rt::ThreadId> allowed;
    for (rt::ThreadId t : runnable) {
        if (t != race.first.tid)
            allowed.push_back(t);
    }
    if (allowed.empty()) {
        starved_ = true;
        return -1;
    }
    for (rt::ThreadId t : allowed) {
        if (t == race.second.tid)
            return t;
    }
    return allowed.front();
}

void
AlternatePolicy::onEvent(const rt::Event &ev)
{
    if (released) {
        post->onEvent(ev);
        return;
    }
    // Tolerant matching (paper §3.3): the second thread's access to
    // the racing cell counts as the alternate-ordered access even at
    // a different program counter, but it must reach the recorded
    // dynamic occurrence — earlier accesses to the same cell were
    // already ordered before the held access in the primary.
    std::uint64_t want = race.second.cell_occurrence > 0
                             ? race.second.cell_occurrence
                             : 1;
    if ((ev.kind == rt::EventKind::MemRead ||
         ev.kind == rt::EventKind::MemWrite) &&
        ev.tid == race.second.tid && ev.cell == race.cell &&
        ev.cell_occurrence >= want) {
        released = true;
    }
}

} // namespace portend::replay
