/**
 * @file
 * The shared replay-prefix checkpoint ladder.
 *
 * Classifying one detection run's race clusters replays the same
 * recorded schedule prefix over and over: every cluster's Algorithm 1
 * (and each of its Ma multi-schedule repetitions) re-executes the
 * trace from step 0 just to reach its pre-race point. The ladder
 * eliminates that redundancy: one replay of the trace stops at every
 * cluster's pre-race point in turn and caches the interpreter state
 * there as a *rung* — a copy-on-write VmState checkpoint, so each
 * rung costs O(pages), not O(state). Analyzers then fork from their
 * rung instead of replaying the prefix.
 *
 * Equivalence contract: a rung is byte-identical to the state the
 * analyzer's own from-0 replay would have produced, because both use
 * the same deterministic interpreter, the same concrete inputs, and
 * schedule policies that agree decision-for-decision on a faithful
 * replay (the policy cursor is derived from the VmState, so a
 * restored rung resumes the trace at exactly the right decision).
 * Each rung also carries a SemanticSnapshot: the monitor state at
 * the stop, so semantic predicates observe a resumed run exactly as
 * they would a full one. Classification with a ladder is therefore
 * byte-identical to classification without one — only faster.
 *
 * Sharing contract: after build() the ladder is immutable. Scheduler
 * workers read it concurrently and *copy* rung states (cheap COW
 * copies; the copy only touches atomic reference counts). Nobody
 * mutates a rung.
 */

#ifndef PORTEND_REPLAY_CHECKPOINT_H
#define PORTEND_REPLAY_CHECKPOINT_H

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "ir/program.h"
#include "race/report.h"
#include "replay/trace.h"
#include "rt/interpreter.h"
#include "rt/semantics.h"
#include "rt/vmstate.h"

namespace portend::replay {

/**
 * Cached pre-race checkpoints over one (program, trace) pair.
 */
class CheckpointLadder
{
  public:
    /**
     * One requested checkpoint location: stop *before* the
     * occurrence-th access of (tid, cell) — the same cell-based
     * addressing Interpreter::StopSpec::CellPoint uses (robust
     * against path divergence, paper §3.3).
     */
    struct Target
    {
        rt::ThreadId tid = -1;
        int cell = -1;
        std::uint64_t occurrence = 1;
    };

    /** The pre-race point of one race report (Algorithm 1's stop). */
    static Target
    targetFor(const race::RaceReport &race)
    {
        return {race.first.tid, race.cell,
                race.first.cell_occurrence};
    }

    /** Pre-race points of every cluster representative, in order. */
    static std::vector<Target>
    targetsFor(const std::vector<race::RaceCluster> &clusters)
    {
        std::vector<Target> targets;
        targets.reserve(clusters.size());
        for (const race::RaceCluster &c : clusters)
            targets.push_back(targetFor(c.representative));
        return targets;
    }

    /** One cached checkpoint. */
    struct Rung
    {
        /** Interpreter state stopped just before the target access
         *  (resume flags included, so setState + run continues it). */
        rt::VmState state;

        /** Monitor state at the stop (see rt/semantics.h). */
        rt::SemanticSnapshot semantics;
    };

    CheckpointLadder() = default;

    /**
     * Build the ladder: replay @p trace once (strict trace policy
     * with a rotate fallback — the same pre-race replay every
     * analyzer runs), stopping at each target in dynamic order and
     * caching a rung there. Targets the replay never reaches (e.g.
     * the execution crashes first) simply get no rung; lookups miss
     * and callers fall back to their own replay. The build stops as
     * soon as every target has a rung.
     *
     * @param prog    finalized program under test
     * @param trace   recorded schedule trace (its inputs drive the
     *                replay)
     * @param targets requested checkpoint locations (duplicates
     *                collapse onto one rung)
     * @param eo      interpreter options; must match the options the
     *                consuming analyzers replay with (see
     *                core::RaceAnalyzer::replayOptions)
     * @param preds   semantic predicates monitored during the build
     */
    static CheckpointLadder
    build(const ir::Program &prog, const ScheduleTrace &trace,
          const std::vector<Target> &targets, const rt::ExecOptions &eo,
          const std::vector<rt::SemanticPredicate> &preds);

    /**
     * The rung for (tid, cell, occurrence), or nullptr when the
     * build never reached that point.
     */
    const Rung *find(rt::ThreadId tid, int cell,
                     std::uint64_t occurrence) const;

    /** Concrete inputs the build replayed with; a consumer must
     *  replay the same inputs for its rung to be valid. */
    const std::vector<std::int64_t> &inputs() const { return inputs_; }

    /** Number of cached rungs. */
    std::size_t size() const { return rungs_.size(); }

    /** Interpreter steps the one shared build replay executed. */
    std::uint64_t buildSteps() const { return build_steps_; }

    /**
     * Replay-prefix steps the ladder saves its consumers: for each
     * requested target that got a rung, the prefix length that no
     * longer needs re-execution (one count per *target*, though
     * stage 3 reuses each rung Ma more times).
     */
    std::uint64_t prefixStepsCovered() const { return covered_steps_; }

  private:
    using Key = std::tuple<rt::ThreadId, int, std::uint64_t>;

    std::vector<Rung> rungs_;
    std::map<Key, std::size_t> index_;
    std::vector<std::int64_t> inputs_;
    std::uint64_t build_steps_ = 0;
    std::uint64_t covered_steps_ = 0;
};

} // namespace portend::replay

#endif // PORTEND_REPLAY_CHECKPOINT_H
