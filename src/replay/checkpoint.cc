#include "replay/checkpoint.h"

#include <algorithm>

#include "replay/replayer.h"
#include "rt/policy.h"
#include "support/logging.h"
#include "support/trace.h"

namespace portend::replay {

CheckpointLadder
CheckpointLadder::build(const ir::Program &prog,
                        const ScheduleTrace &trace,
                        const std::vector<Target> &targets,
                        const rt::ExecOptions &eo,
                        const std::vector<rt::SemanticPredicate> &preds)
{
    obs::Span span("ladder", "build");
    span.arg("targets", static_cast<std::int64_t>(targets.size()));

    CheckpointLadder ladder;
    ladder.inputs_ = trace.concreteInputs();

    // Collapse duplicate targets (clusters racing on the same cell
    // can share a first accessor) onto one pending slot each.
    std::vector<Target> pending;
    for (const Target &t : targets) {
        const bool dup = std::any_of(
            pending.begin(), pending.end(), [&](const Target &p) {
                return p.tid == t.tid && p.cell == t.cell &&
                       p.occurrence == t.occurrence;
            });
        if (!dup)
            pending.push_back(t);
    }
    if (pending.empty())
        return ladder;

    rt::ExecOptions opts = eo;
    opts.concrete_inputs = ladder.inputs_;
    rt::Interpreter interp(prog, opts);

    // The exact pre-race replay every analyzer runs (strict trace
    // following, rotate fallback past the end).
    rt::RotatePolicy rotate;
    TracePolicy follow(trace, TracePolicy::Mode::Strict, &rotate);
    interp.setPolicy(&follow);

    rt::SemanticMonitor sem(interp, preds);
    interp.addSink(&sem);

    while (!pending.empty() && !interp.state().finished()) {
        rt::Interpreter::StopSpec spec;
        for (const Target &t : pending)
            spec.before_cell.push_back({t.tid, t.cell, t.occurrence});
        interp.run(spec);
        if (!interp.stopped())
            break; // replay over: remaining targets stay rung-less

        const std::size_t rung_idx = ladder.rungs_.size();
        Rung rung;
        rung.state = interp.state(); // COW checkpoint: O(pages)
        rung.semantics = sem.snapshot();
        ladder.rungs_.push_back(std::move(rung));

        // Map every target this stop satisfies onto the rung and
        // drop it from the pending set (descending erase keeps the
        // fired indices valid).
        std::vector<std::size_t> fired = interp.firedCellStops();
        PORTEND_ASSERT(!fired.empty(),
                       "ladder stop without a fired cell point");
        for (auto it = fired.rbegin(); it != fired.rend(); ++it) {
            const Target &t = pending[*it];
            ladder.index_[Key{t.tid, t.cell, t.occurrence}] = rung_idx;
            ladder.covered_steps_ += interp.state().global_step;
            pending.erase(pending.begin() +
                          static_cast<std::ptrdiff_t>(*it));
        }
    }

    ladder.build_steps_ = interp.state().global_step;
    return ladder;
}

const CheckpointLadder::Rung *
CheckpointLadder::find(rt::ThreadId tid, int cell,
                       std::uint64_t occurrence) const
{
    auto it = index_.find(Key{tid, cell, occurrence});
    return it == index_.end() ? nullptr : &rungs_[it->second];
}

} // namespace portend::replay
