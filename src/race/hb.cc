#include "race/hb.h"

namespace portend::race {

HbDetector::HbDetector(const ir::Program &p, HbOptions opts)
    : prog(p), opts(opts)
{
    reset();
}

void
HbDetector::reset()
{
    thread_clocks.clear();
    mutex_clocks.clear();
    cond_clocks.clear();
    exit_clocks.clear();
    barrier_pending.clear();
    history.clear();
    reports.clear();
    // Main thread starts with its own component at 1.
    clockOf(0).tick(0);
}

VectorClock &
HbDetector::clockOf(rt::ThreadId tid)
{
    if (tid >= static_cast<int>(thread_clocks.size()))
        thread_clocks.resize(tid + 1);
    return thread_clocks[tid];
}

void
HbDetector::handleAccess(const rt::Event &ev, bool is_write)
{
    VectorClock &me = clockOf(ev.tid);

    RaceAccess acc;
    acc.tid = ev.tid;
    acc.pc = ev.pc;
    acc.is_write = is_write;
    acc.atomic = ev.atomic;
    acc.occurrence = ev.occurrence;
    acc.cell_occurrence = ev.cell_occurrence;
    acc.step = ev.step;
    acc.loc = ev.loc;

    auto &hist = history[ev.cell];
    for (const auto &old : hist) {
        if (old.access.tid == ev.tid)
            continue;
        if (!old.access.is_write && !is_write)
            continue; // read-read never races
        if (opts.ignore_atomic_pairs && old.access.atomic && ev.atomic)
            continue;
        if (!old.clock.lessOrEqual(me)) {
            RaceReport r;
            r.cell = ev.cell;
            r.first = old.access;
            r.second = acc;
            reports.push_back(std::move(r));
        }
    }

    CellAccess rec;
    rec.access = acc;
    rec.clock = me;
    hist.push_back(std::move(rec));
    if (hist.size() > opts.max_history)
        hist.erase(hist.begin());
}

void
HbDetector::onEvent(const rt::Event &ev)
{
    switch (ev.kind) {
      case rt::EventKind::MemRead:
        handleAccess(ev, false);
        break;
      case rt::EventKind::MemWrite:
        handleAccess(ev, true);
        break;

      case rt::EventKind::MutexLock:
        if (!opts.ignore_mutexes)
            clockOf(ev.tid).join(mutex_clocks[ev.sid]);
        break;
      case rt::EventKind::MutexUnlock:
        if (!opts.ignore_mutexes) {
            mutex_clocks[ev.sid] = clockOf(ev.tid);
            clockOf(ev.tid).tick(ev.tid);
        }
        break;

      case rt::EventKind::CondSignal: {
        VectorClock &me = clockOf(ev.tid);
        cond_clocks[ev.sid].join(me);
        me.tick(ev.tid);
        break;
      }
      case rt::EventKind::CondWait:
        clockOf(ev.tid).join(cond_clocks[ev.sid]);
        break;

      case rt::EventKind::BarrierWait: {
        auto &pending = barrier_pending[ev.sid];
        pending.push_back(ev.tid);
        int count = prog.barrier_counts.empty()
                        ? 0
                        : prog.barrier_counts[ev.sid];
        if (static_cast<int>(pending.size()) >= count) {
            // All participants emitted their pass events: join all
            // clocks and restart the generation.
            VectorClock joint;
            for (rt::ThreadId t : pending)
                joint.join(clockOf(t));
            for (rt::ThreadId t : pending) {
                clockOf(t) = joint;
                clockOf(t).tick(t);
            }
            pending.clear();
        }
        break;
      }

      case rt::EventKind::ThreadCreate: {
        // Grow the clock vector first: taking both references before
        // growth would leave one dangling after the resize.
        clockOf(std::max(ev.tid, ev.other));
        VectorClock &parent = clockOf(ev.tid);
        VectorClock &child = clockOf(ev.other);
        child.join(parent);
        child.tick(ev.other);
        parent.tick(ev.tid);
        break;
      }
      case rt::EventKind::ThreadExit:
        exit_clocks[ev.tid] = clockOf(ev.tid);
        break;
      case rt::EventKind::ThreadJoin: {
        auto it = exit_clocks.find(ev.other);
        if (it != exit_clocks.end())
            clockOf(ev.tid).join(it->second);
        break;
      }

      case rt::EventKind::ThreadStart:
      case rt::EventKind::Output:
        break;
    }
}

std::vector<RaceCluster>
HbDetector::clusters() const
{
    return clusterRaces(reports);
}

} // namespace portend::race
