/**
 * @file
 * Dynamic happens-before data race detector.
 *
 * Consumes the interpreter's event stream and maintains vector
 * clocks per thread, release clocks per mutex, signal clocks per
 * condition variable, and generation clocks per barrier. Every
 * memory access is compared against the cell's recent access
 * history; two conflicting accesses by different threads that are
 * unordered by happens-before constitute a race (paper §3.1, [31]).
 *
 * The detector can be configured to ignore mutex events, which
 * recreates the paper's "imperfect detector" experiment (§5.2): a
 * detector that misses synchronization reports false positives,
 * which Portend must then classify as "single ordering".
 */

#ifndef PORTEND_RACE_HB_H
#define PORTEND_RACE_HB_H

#include <map>
#include <vector>

#include "ir/program.h"
#include "race/report.h"
#include "race/vclock.h"
#include "rt/events.h"

namespace portend::race {

/** Detector configuration. */
struct HbOptions
{
    /** Drop mutex lock/unlock edges (imperfect-detector mode). */
    bool ignore_mutexes = false;

    /** Do not report atomic-atomic conflicts as races. */
    bool ignore_atomic_pairs = true;

    /** Per-cell access history bound (oldest evicted first). */
    std::size_t max_history = 4096;
};

/**
 * Happens-before detector; attach as an event sink to an
 * Interpreter, run, then read races()/clusters().
 */
class HbDetector : public rt::EventSink
{
  public:
    /**
     * @param p    the program under test (for barrier counts)
     * @param opts detector configuration
     */
    explicit HbDetector(const ir::Program &p, HbOptions opts = {});

    void onEvent(const rt::Event &ev) override;

    /** All dynamic race occurrences, in detection order. */
    const std::vector<RaceReport> &races() const { return reports; }

    /** Static clusters of races() (paper §4 clustering). */
    std::vector<RaceCluster> clusters() const;

    /** Reset all detector state (for a fresh run). */
    void reset();

  private:
    struct CellAccess
    {
        RaceAccess access;
        VectorClock clock;
    };

    /** Thread clock, growing on demand. */
    VectorClock &clockOf(rt::ThreadId tid);

    void handleAccess(const rt::Event &ev, bool is_write);

    const ir::Program &prog;
    HbOptions opts;

    std::vector<VectorClock> thread_clocks;
    std::map<int, VectorClock> mutex_clocks;
    std::map<int, VectorClock> cond_clocks;
    std::map<int, VectorClock> exit_clocks;
    std::map<int, std::vector<rt::ThreadId>> barrier_pending;
    std::map<int, std::vector<CellAccess>> history;

    std::vector<RaceReport> reports;
};

} // namespace portend::race

#endif // PORTEND_RACE_HB_H
