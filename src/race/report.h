/**
 * @file
 * Race reports and clustering.
 *
 * A report names the two unordered accesses; clustering groups
 * dynamic occurrences of the same static race (same cell, same
 * program counters) so Portend analyzes one representative per
 * cluster and reports the instance count (paper §4, Table 3).
 */

#ifndef PORTEND_RACE_REPORT_H
#define PORTEND_RACE_REPORT_H

#include <cstdint>
#include <string>
#include <vector>

#include "ir/program.h"
#include "rt/events.h"

namespace portend::race {

/** One side of a racing pair. */
struct RaceAccess
{
    rt::ThreadId tid = -1;
    int pc = -1;
    bool is_write = false;
    bool atomic = false;
    std::uint64_t occurrence = 0; ///< nth dynamic execution of (tid, pc)
    std::uint64_t cell_occurrence = 0; ///< nth access of (tid, cell)
    std::uint64_t step = 0;       ///< global step of the access
    ir::SourceLoc loc;
};

/** A dynamic race occurrence: two unordered conflicting accesses. */
struct RaceReport
{
    int cell = -1;          ///< flat cell id
    RaceAccess first;       ///< earlier access in the observed run
    RaceAccess second;      ///< later access in the observed run

    /** Stable identity of the static race: (cell, low pc, high pc). */
    std::string key() const;

    /** Fig. 6-style textual report. */
    std::string describe(const ir::Program &p) const;
};

/** A static race with its dynamic occurrence count. */
struct RaceCluster
{
    RaceReport representative; ///< first occurrence observed
    int instances = 0;         ///< dynamic occurrences
};

/** Group dynamic reports into static clusters (stable order). */
std::vector<RaceCluster>
clusterRaces(const std::vector<RaceReport> &reports);

} // namespace portend::race

#endif // PORTEND_RACE_REPORT_H
