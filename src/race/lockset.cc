#include "race/lockset.h"

#include <algorithm>

namespace portend::race {

LocksetDetector::LocksetDetector(const ir::Program &p) : prog(p)
{
    reset();
}

void
LocksetDetector::reset()
{
    held.clear();
    cells.clear();
    reports.clear();
}

void
LocksetDetector::onEvent(const rt::Event &ev)
{
    switch (ev.kind) {
      case rt::EventKind::MutexLock:
        held[ev.tid].insert(ev.sid);
        return;
      case rt::EventKind::MutexUnlock:
        held[ev.tid].erase(ev.sid);
        return;
      case rt::EventKind::MemRead:
      case rt::EventKind::MemWrite:
        break;
      default:
        return;
    }

    const bool is_write = ev.kind == rt::EventKind::MemWrite;
    CellState &cs = cells[ev.cell];

    RaceAccess acc;
    acc.tid = ev.tid;
    acc.pc = ev.pc;
    acc.is_write = is_write;
    acc.atomic = ev.atomic;
    acc.occurrence = ev.occurrence;
    acc.cell_occurrence = ev.cell_occurrence;
    acc.step = ev.step;
    acc.loc = ev.loc;

    const std::set<int> &mine = held[ev.tid];
    if (!cs.lockset_valid) {
        cs.candidate = mine;
        cs.lockset_valid = true;
    } else {
        std::set<int> inter;
        std::set_intersection(cs.candidate.begin(), cs.candidate.end(),
                              mine.begin(), mine.end(),
                              std::inserter(inter, inter.begin()));
        cs.candidate = std::move(inter);
    }
    cs.accessors.insert(ev.tid);
    cs.any_write = cs.any_write || is_write;

    if (cs.candidate.empty() && cs.accessors.size() > 1 &&
        cs.any_write) {
        // Pair the new access with the most recent conflicting one
        // from another thread.
        for (auto it = cs.accesses.rbegin(); it != cs.accesses.rend();
             ++it) {
            if (it->tid != ev.tid && (it->is_write || is_write)) {
                RaceReport r;
                r.cell = ev.cell;
                r.first = *it;
                r.second = acc;
                reports.push_back(std::move(r));
                break;
            }
        }
    }
    cs.accesses.push_back(acc);
    if (cs.accesses.size() > 4096)
        cs.accesses.erase(cs.accesses.begin());
}

std::vector<RaceCluster>
LocksetDetector::clusters() const
{
    return clusterRaces(reports);
}

} // namespace portend::race
