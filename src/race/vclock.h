/**
 * @file
 * Vector clocks for happens-before tracking.
 *
 * The classic Lamport/Mattern construction [31]: each thread carries
 * a clock vector; synchronization operations join vectors; an access
 * A happens before access B iff A's snapshot is pointwise <= B's
 * thread clock at B. Lattice laws are property-tested in
 * tests/race_vclock_test.cc.
 */

#ifndef PORTEND_RACE_VCLOCK_H
#define PORTEND_RACE_VCLOCK_H

#include <cstdint>
#include <string>
#include <vector>

namespace portend::race {

/**
 * A grow-on-demand vector clock.
 */
class VectorClock
{
  public:
    /** Component for thread @p tid (0 when never set). */
    std::uint64_t
    get(int tid) const
    {
        return tid < static_cast<int>(c.size()) ? c[tid] : 0;
    }

    /** Set component @p tid to @p v. */
    void
    set(int tid, std::uint64_t v)
    {
        grow(tid);
        c[tid] = v;
    }

    /** Increment component @p tid. */
    void
    tick(int tid)
    {
        grow(tid);
        c[tid] += 1;
    }

    /** Pointwise maximum with @p o (least upper bound). */
    void
    join(const VectorClock &o)
    {
        if (o.c.size() > c.size())
            c.resize(o.c.size(), 0);
        for (std::size_t i = 0; i < o.c.size(); ++i) {
            if (o.c[i] > c[i])
                c[i] = o.c[i];
        }
    }

    /**
     * True iff this clock is pointwise <= @p o (i.e., everything
     * this clock has seen, @p o has seen).
     */
    bool
    lessOrEqual(const VectorClock &o) const
    {
        for (std::size_t i = 0; i < c.size(); ++i) {
            if (c[i] > o.get(static_cast<int>(i)))
                return false;
        }
        return true;
    }

    bool operator==(const VectorClock &o) const
    {
        std::size_t n = std::max(c.size(), o.c.size());
        for (std::size_t i = 0; i < n; ++i) {
            if (get(static_cast<int>(i)) !=
                o.get(static_cast<int>(i))) {
                return false;
            }
        }
        return true;
    }

    /** Render as "<a, b, c>". */
    std::string
    toString() const
    {
        std::string out = "<";
        for (std::size_t i = 0; i < c.size(); ++i) {
            if (i)
                out += ", ";
            out += std::to_string(c[i]);
        }
        return out + ">";
    }

  private:
    void
    grow(int tid)
    {
        if (tid >= static_cast<int>(c.size()))
            c.resize(tid + 1, 0);
    }

    std::vector<std::uint64_t> c;
};

} // namespace portend::race

#endif // PORTEND_RACE_VCLOCK_H
