#include "race/report.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace portend::race {

std::string
RaceReport::key() const
{
    int lo = std::min(first.pc, second.pc);
    int hi = std::max(first.pc, second.pc);
    std::ostringstream os;
    os << cell << ":" << lo << ":" << hi;
    return os.str();
}

std::string
RaceReport::describe(const ir::Program &p) const
{
    std::ostringstream os;
    os << "Data race during access to: " << p.cellName(cell) << "\n";
    os << "  current thread id: " << second.tid << ": "
       << (second.is_write ? "WRITE" : "READ") << "\n";
    os << "  racing thread id: " << first.tid << ": "
       << (first.is_write ? "WRITE" : "READ") << "\n";
    os << "  Current thread at: " << second.loc.toString() << " (pc"
       << second.pc << ")\n";
    os << "  Previous at: " << first.loc.toString() << " (pc"
       << first.pc << ")\n";
    return os.str();
}

std::vector<RaceCluster>
clusterRaces(const std::vector<RaceReport> &reports)
{
    std::vector<RaceCluster> out;
    std::map<std::string, std::size_t> index;
    for (const auto &r : reports) {
        auto [it, inserted] = index.emplace(r.key(), out.size());
        if (inserted) {
            RaceCluster c;
            c.representative = r;
            c.instances = 1;
            out.push_back(std::move(c));
        } else {
            // Keep the *latest* occurrence as representative: for
            // flag-style synchronization the mature pair (write
            // before the consuming read) is the one whose alternate
            // ordering reveals the ad-hoc synchronization.
            out[it->second].representative = r;
            out[it->second].instances += 1;
        }
    }
    return out;
}

} // namespace portend::race
