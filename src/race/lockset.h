/**
 * @file
 * Eraser-style lockset race detector [49].
 *
 * Tracks the set of mutexes each thread holds; each shared cell's
 * candidate lockset is intersected at every access. A cell whose
 * candidate set becomes empty while accessed by multiple threads
 * (with at least one write) is reported. Lockset detection ignores
 * ordering (fork/join, condition variables), so — like static
 * detectors — it produces false positives that Portend must triage;
 * this detector exists to feed that experiment (paper §5.2, §5.1
 * "one could use a static race detector ... then use Portend to
 * classify these reports").
 */

#ifndef PORTEND_RACE_LOCKSET_H
#define PORTEND_RACE_LOCKSET_H

#include <map>
#include <set>
#include <vector>

#include "ir/program.h"
#include "race/report.h"
#include "rt/events.h"

namespace portend::race {

/**
 * Lockset detector; attach as an event sink, run, read races().
 */
class LocksetDetector : public rt::EventSink
{
  public:
    explicit LocksetDetector(const ir::Program &p);

    void onEvent(const rt::Event &ev) override;

    /** Reported races (one per offending access pair). */
    const std::vector<RaceReport> &races() const { return reports; }

    /** Static clusters of races(). */
    std::vector<RaceCluster> clusters() const;

    /** Reset all detector state. */
    void reset();

  private:
    struct CellState
    {
        bool lockset_valid = false;  ///< candidate set initialized
        std::set<int> candidate;     ///< intersection of held locks
        std::set<rt::ThreadId> accessors;
        bool any_write = false;
        std::vector<RaceAccess> accesses; ///< for report pairing
    };

    const ir::Program &prog;
    std::map<rt::ThreadId, std::set<int>> held;
    std::map<int, CellState> cells;
    std::vector<RaceReport> reports;
};

} // namespace portend::race

#endif // PORTEND_RACE_LOCKSET_H
