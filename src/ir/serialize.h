/**
 * @file
 * Self-contained textual serialization of PIL programs.
 *
 * Unlike the diagnostic printer (ir/printer.h), this format round-
 * trips: serialize() then deserialize() reproduces the program
 * exactly (verified by property tests). It lets workload models,
 * regression programs, and bug-report reproducers live as plain
 * text artifacts next to the schedule traces they pair with
 * (paper §3.6's replayable evidence).
 *
 * Format (line-based, whitespace-separated):
 *
 *   pil v1 <name>
 *   global <name> <size> [init values...]
 *   mutex <name> | cond <name> | barrier <name> <count>
 *   func <name> <params> <regs>
 *   block <name>
 *   inst <op> dst=<r> a=<operand> ... ; operands are r<N>, i<V>, _
 *   end
 */

#ifndef PORTEND_IR_SERIALIZE_H
#define PORTEND_IR_SERIALIZE_H

#include <optional>
#include <string>

#include "ir/program.h"

namespace portend::ir {

/** Render @p p in the round-trip text format. */
std::string serializeProgram(const Program &p);

/**
 * Parse the round-trip text format.
 *
 * @return the finalized program, or nullopt with @p error filled
 *         when the text is malformed
 */
std::optional<Program> deserializeProgram(const std::string &text,
                                          std::string *error = nullptr);

} // namespace portend::ir

#endif // PORTEND_IR_SERIALIZE_H
