#include "ir/printer.h"

#include <sstream>

namespace portend::ir {

namespace {

std::string
operandToString(const Operand &o)
{
    if (o.isReg())
        return "r" + std::to_string(o.reg);
    if (o.isImm())
        return std::to_string(o.imm);
    return "_";
}

} // namespace

std::string
instToString(const Program &p, const Inst &inst)
{
    std::ostringstream os;
    if (inst.dst >= 0)
        os << "r" << inst.dst << " = ";
    os << opName(inst.op);
    switch (inst.op) {
      case Op::Bin:
      case Op::Un:
        os << "." << sym::kindName(inst.kind);
        break;
      case Op::Load:
      case Op::Store:
      case Op::AtomicRmW:
        os << " @" << p.globals[inst.gid].name;
        break;
      case Op::MutexLock:
      case Op::MutexUnlock:
        os << " $" << p.mutex_names[inst.sid];
        break;
      case Op::CondWait:
        os << " $" << p.cond_names[inst.sid] << " with $"
           << p.mutex_names[inst.sid2];
        break;
      case Op::CondSignal:
      case Op::CondBroadcast:
        os << " $" << p.cond_names[inst.sid];
        break;
      case Op::BarrierWait:
        os << " $" << p.barrier_names[inst.sid];
        break;
      case Op::Call:
      case Op::ThreadCreate:
        os << " " << p.functions[inst.fid].name;
        break;
      case Op::Br:
        os << " ?" << operandToString(inst.a) << " -> b"
           << inst.then_block << ", b" << inst.else_block;
        break;
      case Op::Jmp:
        os << " -> b" << inst.then_block;
        break;
      case Op::Input:
        os << " \"" << inst.text << "\" in [" << inst.lo << ", "
           << inst.hi << "]";
        break;
      case Op::Output:
      case Op::OutputStr:
      case Op::Assert:
        os << " \"" << inst.text << "\"";
        break;
      default:
        break;
    }
    // Generic operand tail for ops whose operands were not already
    // rendered inline above.
    switch (inst.op) {
      case Op::Br:
      case Op::Jmp:
      case Op::Input:
      case Op::OutputStr:
        break;
      default: {
        std::string tail;
        for (const Operand *o : {&inst.a, &inst.b, &inst.c}) {
            if (o->present())
                tail += (tail.empty() ? " " : ", ") +
                        operandToString(*o);
        }
        os << tail;
        break;
      }
    }
    if (inst.loc.line > 0)
        os << "  ; " << inst.loc.toString();
    return os.str();
}

std::string
programToString(const Program &p)
{
    std::ostringstream os;
    os << "program " << p.name << "\n";
    for (const auto &g : p.globals)
        os << "global " << g.name << "[" << g.size << "]\n";
    for (std::size_t i = 0; i < p.mutex_names.size(); ++i)
        os << "mutex " << p.mutex_names[i] << "\n";
    for (std::size_t i = 0; i < p.cond_names.size(); ++i)
        os << "cond " << p.cond_names[i] << "\n";
    for (std::size_t i = 0; i < p.barrier_names.size(); ++i) {
        os << "barrier " << p.barrier_names[i] << "("
           << p.barrier_counts[i] << ")\n";
    }
    for (const auto &f : p.functions) {
        os << "\nfunc " << f.name << "(" << f.num_params << ") regs="
           << f.num_regs << "\n";
        for (std::size_t b = 0; b < f.blocks.size(); ++b) {
            os << "  b" << b;
            if (!f.blocks[b].name.empty())
                os << " <" << f.blocks[b].name << ">";
            os << ":\n";
            for (const auto &inst : f.blocks[b].insts) {
                os << "    ";
                if (inst.pc >= 0)
                    os << "pc" << inst.pc << ": ";
                os << instToString(p, inst) << "\n";
            }
        }
    }
    return os.str();
}

int
programLineCount(const Program &p)
{
    const std::string text = programToString(p);
    int lines = 0;
    for (char c : text) {
        if (c == '\n')
            lines += 1;
    }
    return lines;
}

} // namespace portend::ir
