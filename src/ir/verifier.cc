#include "ir/verifier.h"

#include <sstream>

namespace portend::ir {

namespace {

/** Appends formatted diagnostics for one function. */
class FunctionChecker
{
  public:
    FunctionChecker(const Program &p, const Function &f,
                    std::vector<std::string> &out)
        : prog(p), func(f), errors(out)
    {}

    void
    run()
    {
        if (func.blocks.empty()) {
            report("function has no blocks");
            return;
        }
        for (std::size_t b = 0; b < func.blocks.size(); ++b)
            checkBlock(static_cast<BlockId>(b));
    }

  private:
    void
    report(const std::string &msg)
    {
        std::ostringstream os;
        os << func.name << ": " << msg;
        errors.push_back(os.str());
    }

    void
    reportAt(BlockId b, std::size_t i, const std::string &msg)
    {
        std::ostringstream os;
        os << func.name << "/" << func.blocks[b].name << "[" << i
           << "]: " << msg;
        errors.push_back(os.str());
    }

    void
    checkOperand(BlockId b, std::size_t i, const Operand &o)
    {
        if (o.isReg() && (o.reg < 0 || o.reg >= func.num_regs)) {
            reportAt(b, i, "register r" + std::to_string(o.reg) +
                               " out of range");
        }
    }

    void
    checkBlockTarget(BlockId b, std::size_t i, BlockId target,
                     const char *which)
    {
        if (target < 0 ||
            target >= static_cast<BlockId>(func.blocks.size())) {
            reportAt(b, i, std::string("bad ") + which + " target " +
                               std::to_string(target));
        }
    }

    void
    checkBlock(BlockId b)
    {
        const auto &insts = func.blocks[b].insts;
        if (insts.empty()) {
            report("block '" + func.blocks[b].name + "' is empty");
            return;
        }
        for (std::size_t i = 0; i < insts.size(); ++i) {
            const Inst &inst = insts[i];
            const bool last = i + 1 == insts.size();

            if (isTerminator(inst.op) && !last)
                reportAt(b, i, "terminator before end of block");
            if (last && !isTerminator(inst.op))
                reportAt(b, i, "block does not end in a terminator");

            checkOperand(b, i, inst.a);
            checkOperand(b, i, inst.b);
            checkOperand(b, i, inst.c);
            if (inst.dst >= func.num_regs) {
                reportAt(b, i, "dst register r" +
                                   std::to_string(inst.dst) +
                                   " out of range");
            }

            switch (inst.op) {
              case Op::Br:
                checkBlockTarget(b, i, inst.then_block, "then");
                checkBlockTarget(b, i, inst.else_block, "else");
                if (!inst.a.present())
                    reportAt(b, i, "br without condition");
                break;
              case Op::Jmp:
                checkBlockTarget(b, i, inst.then_block, "jump");
                break;
              case Op::Load:
              case Op::Store:
              case Op::AtomicRmW:
                if (inst.gid < 0 ||
                    inst.gid >=
                        static_cast<GlobalId>(prog.globals.size())) {
                    reportAt(b, i, "bad global id " +
                                       std::to_string(inst.gid));
                }
                break;
              case Op::Call:
              case Op::ThreadCreate: {
                if (inst.fid < 0 ||
                    inst.fid >=
                        static_cast<FuncId>(prog.functions.size())) {
                    reportAt(b, i, "bad callee id " +
                                       std::to_string(inst.fid));
                    break;
                }
                int given = (inst.a.present() ? 1 : 0) +
                            (inst.b.present() ? 1 : 0) +
                            (inst.c.present() ? 1 : 0);
                int want = prog.functions[inst.fid].num_params;
                if (inst.op == Op::ThreadCreate)
                    given = 1; // spawned functions take one argument
                if (given < want) {
                    reportAt(b, i, "call to " +
                                       prog.functions[inst.fid].name +
                                       " passes " +
                                       std::to_string(given) +
                                       " args, needs " +
                                       std::to_string(want));
                }
                break;
              }
              case Op::MutexLock:
              case Op::MutexUnlock:
                if (inst.sid < 0 ||
                    inst.sid >= static_cast<SyncId>(
                                    prog.mutex_names.size())) {
                    reportAt(b, i, "bad mutex id " +
                                       std::to_string(inst.sid));
                }
                break;
              case Op::CondWait:
                if (inst.sid2 < 0 ||
                    inst.sid2 >= static_cast<SyncId>(
                                     prog.mutex_names.size())) {
                    reportAt(b, i, "bad cond-wait mutex id " +
                                       std::to_string(inst.sid2));
                }
                [[fallthrough]];
              case Op::CondSignal:
              case Op::CondBroadcast:
                if (inst.sid < 0 ||
                    inst.sid >= static_cast<SyncId>(
                                    prog.cond_names.size())) {
                    reportAt(b, i, "bad cond id " +
                                       std::to_string(inst.sid));
                }
                break;
              case Op::BarrierWait:
                if (inst.sid < 0 ||
                    inst.sid >= static_cast<SyncId>(
                                    prog.barrier_names.size())) {
                    reportAt(b, i, "bad barrier id " +
                                       std::to_string(inst.sid));
                }
                break;
              case Op::Input:
                if (inst.lo > inst.hi)
                    reportAt(b, i, "input with empty domain");
                break;
              default:
                break;
            }
        }
    }

    const Program &prog;
    const Function &func;
    std::vector<std::string> &errors;
};

} // namespace

std::vector<std::string>
verifyProgram(const Program &p)
{
    std::vector<std::string> errors;
    if (p.entry < 0 ||
        p.entry >= static_cast<FuncId>(p.functions.size())) {
        errors.push_back("program has no valid entry function");
    }
    for (const auto &f : p.functions) {
        FunctionChecker checker(p, f, errors);
        checker.run();
    }
    for (std::size_t i = 0; i < p.barrier_counts.size(); ++i) {
        if (p.barrier_counts[i] <= 0) {
            errors.push_back("barrier '" + p.barrier_names[i] +
                             "' has non-positive count");
        }
    }
    return errors;
}

} // namespace portend::ir
