#include "ir/program.h"

#include <sstream>

#include "support/logging.h"

namespace portend::ir {

const char *
opName(Op op)
{
    switch (op) {
      case Op::Nop: return "nop";
      case Op::ConstOp: return "const";
      case Op::Mov: return "mov";
      case Op::Bin: return "bin";
      case Op::Un: return "un";
      case Op::Select: return "select";
      case Op::Load: return "load";
      case Op::Store: return "store";
      case Op::Br: return "br";
      case Op::Jmp: return "jmp";
      case Op::Call: return "call";
      case Op::Ret: return "ret";
      case Op::Halt: return "halt";
      case Op::ThreadCreate: return "thread_create";
      case Op::ThreadJoin: return "thread_join";
      case Op::MutexLock: return "mutex_lock";
      case Op::MutexUnlock: return "mutex_unlock";
      case Op::CondWait: return "cond_wait";
      case Op::CondSignal: return "cond_signal";
      case Op::CondBroadcast: return "cond_broadcast";
      case Op::BarrierWait: return "barrier_wait";
      case Op::AtomicRmW: return "atomic_rmw";
      case Op::Yield: return "yield";
      case Op::Sleep: return "sleep";
      case Op::Input: return "input";
      case Op::GetTime: return "get_time";
      case Op::Output: return "output";
      case Op::OutputStr: return "output_str";
      case Op::Assert: return "assert";
    }
    return "?";
}

bool
isTerminator(Op op)
{
    switch (op) {
      case Op::Br:
      case Op::Jmp:
      case Op::Ret:
      case Op::Halt:
        return true;
      default:
        return false;
    }
}

std::string
SourceLoc::toString() const
{
    std::ostringstream os;
    os << (file.empty() ? "<unknown>" : file) << ":" << line;
    return os.str();
}

FuncId
Program::findFunction(const std::string &fname) const
{
    for (std::size_t i = 0; i < functions.size(); ++i) {
        if (functions[i].name == fname)
            return static_cast<FuncId>(i);
    }
    return -1;
}

const InputDecl *
Program::findInput(const std::string &iname) const
{
    for (const auto &d : inputs) {
        if (d.name == iname)
            return &d;
    }
    return nullptr;
}

void
Program::finalize()
{
    runtime_cache.reset(); // pcs may move: drop any stale decode
    pc_index.clear();
    int pc = 0;
    for (std::size_t f = 0; f < functions.size(); ++f) {
        for (std::size_t b = 0; b < functions[f].blocks.size(); ++b) {
            auto &insts = functions[f].blocks[b].insts;
            for (std::size_t i = 0; i < insts.size(); ++i) {
                insts[i].pc = pc++;
                pc_index.push_back({static_cast<FuncId>(f),
                                    static_cast<BlockId>(b),
                                    static_cast<int>(i)});
            }
        }
    }
    global_base.clear();
    total_cells = 0;
    for (const auto &g : globals) {
        global_base.push_back(total_cells);
        total_cells += g.size;
    }
}

int
Program::numInsts() const
{
    int n = 0;
    for (const auto &f : functions) {
        for (const auto &b : f.blocks)
            n += static_cast<int>(b.insts.size());
    }
    return n;
}

const Inst &
Program::instAt(int pc) const
{
    PcLoc l = pcLoc(pc);
    return functions[l.func].blocks[l.block].insts[l.index];
}

Program::PcLoc
Program::pcLoc(int pc) const
{
    PORTEND_ASSERT(pc >= 0 &&
                       pc < static_cast<int>(pc_index.size()),
                   "pc out of range: ", pc);
    return pc_index[pc];
}

int
Program::numCells() const
{
    return total_cells;
}

int
Program::cellId(GlobalId gid, int idx) const
{
    PORTEND_ASSERT(gid >= 0 &&
                       gid < static_cast<int>(global_base.size()),
                   "bad global id ", gid);
    return global_base[gid] + idx;
}

GlobalId
Program::cellGlobal(int cell) const
{
    for (std::size_t g = 0; g < globals.size(); ++g) {
        int base = global_base[g];
        if (cell >= base && cell < base + globals[g].size)
            return static_cast<GlobalId>(g);
    }
    return -1;
}

std::string
Program::cellName(int cell) const
{
    for (std::size_t g = 0; g < globals.size(); ++g) {
        int base = global_base[g];
        if (cell >= base && cell < base + globals[g].size) {
            std::ostringstream os;
            os << globals[g].name;
            if (globals[g].size > 1)
                os << "[" << (cell - base) << "]";
            return os.str();
        }
    }
    return "<cell " + std::to_string(cell) + ">";
}

} // namespace portend::ir
