#include "ir/serialize.h"

#include <map>
#include <set>
#include <sstream>

#include "ir/verifier.h"

namespace portend::ir {

namespace {

/** Opcode <-> mnemonic table (mnemonics from opName). */
std::map<std::string, Op>
opTable()
{
    std::map<std::string, Op> t;
    for (int i = 0; i <= static_cast<int>(Op::Assert); ++i) {
        Op op = static_cast<Op>(i);
        t[opName(op)] = op;
    }
    return t;
}

std::map<std::string, sym::ExprKind>
kindTable()
{
    std::map<std::string, sym::ExprKind> t;
    for (int i = 0; i <= static_cast<int>(sym::ExprKind::Ite); ++i) {
        sym::ExprKind k = static_cast<sym::ExprKind>(i);
        t[sym::kindName(k)] = k;
    }
    return t;
}

std::string
operandToken(const Operand &o)
{
    if (o.isReg())
        return "r" + std::to_string(o.reg);
    if (o.isImm())
        return "i" + std::to_string(o.imm);
    return "_";
}

bool
parseOperand(const std::string &tok, Operand &out)
{
    if (tok == "_") {
        out = Operand();
        return true;
    }
    if (tok.size() < 2)
        return false;
    try {
        if (tok[0] == 'r') {
            out = Operand::r(std::stoi(tok.substr(1)));
            return true;
        }
        if (tok[0] == 'i') {
            out = Operand::i(std::stoll(tok.substr(1)));
            return true;
        }
    } catch (const std::exception &) {
        return false;
    }
    return false;
}

/** Quote a string token (spaces and backslashes escaped). */
std::string
quote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out + "\"";
}

/** Read a quoted token from the stream. */
bool
unquote(std::istringstream &is, std::string &out)
{
    std::string raw;
    if (!(is >> raw) || raw.empty() || raw[0] != '"')
        return false;
    // Re-join tokens until the closing unescaped quote.
    std::string acc = raw.substr(1);
    while (true) {
        // Count trailing backslashes before a final quote.
        if (!acc.empty() && acc.back() == '"') {
            std::size_t bs = 0;
            while (bs + 1 < acc.size() &&
                   acc[acc.size() - 2 - bs] == '\\') {
                bs += 1;
            }
            if (bs % 2 == 0) {
                acc.pop_back();
                break;
            }
        }
        std::string more;
        if (!(is >> more))
            return false;
        acc += " " + more;
    }
    out.clear();
    for (std::size_t i = 0; i < acc.size(); ++i) {
        if (acc[i] == '\\' && i + 1 < acc.size())
            i += 1;
        out += acc[i];
    }
    return true;
}

} // namespace

std::string
serializeProgram(const Program &p)
{
    std::ostringstream os;
    os << "pil v1 " << quote(p.name) << "\n";
    for (const auto &g : p.globals) {
        os << "global " << quote(g.name) << " " << g.size;
        for (std::int64_t v : g.init)
            os << " " << v;
        os << "\n";
    }
    for (const auto &m : p.mutex_names)
        os << "mutex " << quote(m) << "\n";
    for (const auto &c : p.cond_names)
        os << "cond " << quote(c) << "\n";
    for (std::size_t i = 0; i < p.barrier_names.size(); ++i) {
        os << "barrier " << quote(p.barrier_names[i]) << " "
           << p.barrier_counts[i] << "\n";
    }
    // Input declarations are emitted only when present so programs
    // without them serialize byte-identically to the pre-declaration
    // format (on-disk corpus compatibility).
    for (const auto &d : p.inputs) {
        os << "input " << quote(d.name) << " " << d.lo << " " << d.hi
           << "\n";
    }
    for (const auto &f : p.functions) {
        os << "func " << quote(f.name) << " " << f.num_params << " "
           << f.num_regs << "\n";
        for (const auto &b : f.blocks) {
            os << "block " << quote(b.name) << "\n";
            for (const auto &inst : b.insts) {
                os << "inst " << opName(inst.op) << " " << inst.dst
                   << " " << operandToken(inst.a) << " "
                   << operandToken(inst.b) << " "
                   << operandToken(inst.c) << " "
                   << sym::kindName(inst.kind) << " "
                   << widthBits(inst.width) << " " << inst.gid << " "
                   << inst.sid << " " << inst.sid2 << " " << inst.fid
                   << " " << inst.then_block << " " << inst.else_block
                   << " " << inst.lo << " " << inst.hi << " "
                   << quote(inst.text) << " " << quote(inst.loc.file)
                   << " " << inst.loc.line << "\n";
            }
        }
    }
    os << "end\n";
    return os.str();
}

std::optional<Program>
deserializeProgram(const std::string &text, std::string *error)
{
    auto fail = [&](const std::string &msg) -> std::optional<Program> {
        if (error)
            *error = msg;
        return std::nullopt;
    };

    static const std::map<std::string, Op> ops = opTable();
    static const std::map<std::string, sym::ExprKind> kinds =
        kindTable();

    // Hard bounds on declared sizes: malformed or adversarial input
    // (fuzzer-found cases) must fail cleanly, never OOM or crash.
    constexpr int kMaxGlobalSize = 1 << 20;
    constexpr int kMaxRegs = 1 << 20;
    constexpr int kMaxBarrierCount = 4096;

    Program p;
    Function *cur_func = nullptr;
    BasicBlock *cur_block = nullptr;

    std::set<std::string> global_names, mutex_names, cond_names,
        barrier_names, func_names, input_names;

    std::istringstream is(text);
    std::string line;
    int lineno = 0;
    bool saw_header = false;
    bool saw_end = false;

    while (std::getline(is, line)) {
        lineno += 1;
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::string tag;
        ls >> tag;

        auto where = [&] {
            return " (line " + std::to_string(lineno) + ")";
        };

        if (!saw_header && tag != "pil")
            return fail("'" + tag + "' before 'pil v1' header" +
                        where());

        if (tag == "pil") {
            if (saw_header)
                return fail("duplicate 'pil' header" + where());
            std::string ver;
            ls >> ver;
            if (ver != "v1")
                return fail("unsupported version" + where());
            if (!unquote(ls, p.name))
                return fail("bad program name" + where());
            saw_header = true;
        } else if (tag == "global") {
            Global g;
            if (!unquote(ls, g.name) || !(ls >> g.size))
                return fail("bad global" + where());
            if (g.size < 1 || g.size > kMaxGlobalSize)
                return fail("global size out of range" + where());
            if (!global_names.insert(g.name).second)
                return fail("duplicate global '" + g.name + "'" +
                            where());
            std::int64_t v;
            while (ls >> v)
                g.init.push_back(v);
            if (!ls.eof())
                return fail("bad global init value" + where());
            if (g.init.size() > static_cast<std::size_t>(g.size))
                return fail("more init values than cells" + where());
            p.globals.push_back(std::move(g));
        } else if (tag == "mutex") {
            std::string n;
            if (!unquote(ls, n))
                return fail("bad mutex" + where());
            if (!mutex_names.insert(n).second)
                return fail("duplicate mutex '" + n + "'" + where());
            p.mutex_names.push_back(n);
        } else if (tag == "cond") {
            std::string n;
            if (!unquote(ls, n))
                return fail("bad cond" + where());
            if (!cond_names.insert(n).second)
                return fail("duplicate cond '" + n + "'" + where());
            p.cond_names.push_back(n);
        } else if (tag == "barrier") {
            std::string n;
            int count = 0;
            if (!unquote(ls, n) || !(ls >> count))
                return fail("bad barrier" + where());
            if (count < 1 || count > kMaxBarrierCount)
                return fail("barrier count out of range" + where());
            if (!barrier_names.insert(n).second)
                return fail("duplicate barrier '" + n + "'" +
                            where());
            p.barrier_names.push_back(n);
            p.barrier_counts.push_back(count);
        } else if (tag == "input") {
            InputDecl d;
            if (!unquote(ls, d.name) || !(ls >> d.lo) ||
                !(ls >> d.hi)) {
                return fail("bad input declaration" + where());
            }
            if (d.lo > d.hi)
                return fail("input domain empty" + where());
            if (!input_names.insert(d.name).second)
                return fail("duplicate input '" + d.name + "'" +
                            where());
            std::string trailing;
            if (ls >> trailing)
                return fail("trailing tokens after input" + where());
            p.inputs.push_back(std::move(d));
        } else if (tag == "func") {
            Function f;
            if (!unquote(ls, f.name) || !(ls >> f.num_params) ||
                !(ls >> f.num_regs)) {
                return fail("bad func" + where());
            }
            if (f.num_params < 0 || f.num_regs < 0 ||
                f.num_regs > kMaxRegs || f.num_params > f.num_regs) {
                return fail("func register counts out of range" +
                            where());
            }
            if (!func_names.insert(f.name).second)
                return fail("duplicate func '" + f.name + "'" +
                            where());
            p.functions.push_back(std::move(f));
            cur_func = &p.functions.back();
            cur_block = nullptr;
        } else if (tag == "block") {
            if (!cur_func)
                return fail("block outside func" + where());
            BasicBlock b;
            if (!unquote(ls, b.name))
                return fail("bad block" + where());
            cur_func->blocks.push_back(std::move(b));
            cur_block = &cur_func->blocks.back();
        } else if (tag == "inst") {
            if (!cur_block)
                return fail("inst outside block" + where());
            Inst inst;
            std::string opname, ta, tb, tc, kindname;
            int width_bits = 64;
            if (!(ls >> opname >> inst.dst >> ta >> tb >> tc >>
                  kindname >> width_bits >> inst.gid >> inst.sid >>
                  inst.sid2 >> inst.fid >> inst.then_block >>
                  inst.else_block >> inst.lo >> inst.hi)) {
                return fail("bad inst fields" + where());
            }
            auto oit = ops.find(opname);
            if (oit == ops.end())
                return fail("unknown op '" + opname + "'" + where());
            inst.op = oit->second;
            if (!parseOperand(ta, inst.a) ||
                !parseOperand(tb, inst.b) ||
                !parseOperand(tc, inst.c)) {
                return fail("bad operand" + where());
            }
            auto kit = kinds.find(kindname);
            if (kit == kinds.end())
                return fail("unknown kind" + where());
            inst.kind = kit->second;
            switch (width_bits) {
              case 1: inst.width = sym::Width::I1; break;
              case 8: inst.width = sym::Width::I8; break;
              case 16: inst.width = sym::Width::I16; break;
              case 32: inst.width = sym::Width::I32; break;
              case 64: inst.width = sym::Width::I64; break;
              default: return fail("bad width" + where());
            }
            if (inst.dst < -1)
                return fail("bad dst register" + where());
            if (!unquote(ls, inst.text) ||
                !unquote(ls, inst.loc.file) ||
                !(ls >> inst.loc.line)) {
                return fail("bad inst strings" + where());
            }
            std::string trailing;
            if (ls >> trailing)
                return fail("trailing tokens after inst" + where());
            cur_block->insts.push_back(std::move(inst));
        } else if (tag == "end") {
            saw_end = true;
            break;
        } else {
            return fail("unknown tag '" + tag + "'" + where());
        }
    }

    if (!saw_header)
        return fail("missing 'pil v1' header");
    if (!saw_end)
        return fail("missing 'end'");
    while (std::getline(is, line)) {
        lineno += 1;
        if (!line.empty()) {
            return fail("content after 'end' (line " +
                        std::to_string(lineno) + ")");
        }
    }
    p.entry = p.findFunction("main");
    if (p.entry < 0)
        return fail("program has no main function");
    // Structural validation before finalize: out-of-range operands,
    // dangling block/function/sync references, missing terminators —
    // a deserialized program must be as safe to execute as a
    // builder-built one.
    std::vector<std::string> errors = verifyProgram(p);
    if (!errors.empty())
        return fail("verification failed: " + errors.front());
    p.finalize();
    return p;
}

} // namespace portend::ir
