/**
 * @file
 * Fluent construction API for PIL programs.
 *
 * Workload models and tests build programs through ProgramBuilder /
 * FunctionBuilder instead of assembling Inst structs by hand. The
 * builder allocates registers, tracks an insertion block, resolves
 * function references by name, and stamps pseudo source locations
 * onto instructions so race reports read like the paper's (Fig. 6).
 *
 * Example:
 * @code
 *   ProgramBuilder pb("example");
 *   GlobalId counter = pb.global("counter");
 *   SyncId m = pb.mutex("l");
 *   auto &f = pb.function("main", 0);
 *   BlockId entry = f.block("entry");
 *   f.to(entry);
 *   f.lock(m);
 *   Reg v = f.load(counter);
 *   f.store(counter, I(0), R(f.bin(sym::ExprKind::Add, R(v), I(1))));
 *   f.unlock(m);
 *   f.halt();
 *   Program p = pb.build();
 * @endcode
 */

#ifndef PORTEND_IR_BUILDER_H
#define PORTEND_IR_BUILDER_H

#include <memory>
#include <string>
#include <vector>

#include "ir/program.h"

namespace portend::ir {

/** Shorthand register operand. */
inline Operand R(Reg r) { return Operand::r(r); }

/** Shorthand immediate operand. */
inline Operand I(std::int64_t v) { return Operand::i(v); }

class ProgramBuilder;

/**
 * Builds one function: allocates registers and emits instructions
 * into the current insertion block.
 */
class FunctionBuilder
{
  public:
    /** Parameter @p i arrives in register i. */
    Reg param(int i) const;

    /** Allocate a fresh virtual register. */
    Reg fresh();

    /** Create a new basic block. */
    BlockId block(const std::string &bname);

    /** Set the insertion block. */
    FunctionBuilder &to(BlockId b);

    /** Current insertion block. */
    BlockId current() const { return cur; }

    /** Set the pseudo source file stamped on following emissions. */
    FunctionBuilder &file(const std::string &f);

    /** Set the pseudo source line stamped on following emissions. */
    FunctionBuilder &line(int l);

    /** @name Emitters (each appends to the insertion block)
     * @{
     */
    Reg iconst(std::int64_t v);
    Reg mov(Operand a);
    /** Overwrite an existing register (loop counters, accumulators). */
    void movInto(Reg dst, Operand a);
    /** ALU into an existing register. */
    void binInto(Reg dst, sym::ExprKind k, Operand a, Operand b,
                 sym::Width w = sym::Width::I64);
    Reg bin(sym::ExprKind k, Operand a, Operand b,
            sym::Width w = sym::Width::I64);
    Reg un(sym::ExprKind k, Operand a, sym::Width w = sym::Width::I64);
    Reg select(Operand c, Operand t, Operand f);
    Reg load(GlobalId g, Operand idx = I(0));
    void store(GlobalId g, Operand idx, Operand val);
    void br(Operand cond, BlockId then_b, BlockId else_b);
    void jmp(BlockId b);
    Reg call(const std::string &callee, std::vector<Operand> args = {});
    void callVoid(const std::string &callee,
                  std::vector<Operand> args = {});
    void ret(Operand a);
    void retVoid();
    void halt();
    Reg threadCreate(const std::string &callee, Operand arg = I(0));
    void threadJoin(Operand tid);
    void lock(SyncId m);
    void unlock(SyncId m);
    void condWait(SyncId cv, SyncId m);
    void condSignal(SyncId cv);
    void condBroadcast(SyncId cv);
    void barrierWait(SyncId bar);
    Reg atomicAdd(GlobalId g, Operand idx, Operand delta);
    void yield();
    void sleep(Operand ticks);
    Reg input(const std::string &iname, std::int64_t lo, std::int64_t hi);
    Reg getTime();
    void output(const std::string &label, Operand v);
    void outputStr(const std::string &s);
    void assertTrue(Operand cond, const std::string &label);
    /** @} */

    /** Number of registers allocated so far. */
    int numRegs() const { return next_reg; }

  private:
    friend class ProgramBuilder;

    FunctionBuilder(ProgramBuilder *owner, FuncId id, int num_params);

    Inst &emit(Op op);
    Function &fn();

    ProgramBuilder *owner;
    FuncId id;
    int next_reg;
    BlockId cur = -1;
    SourceLoc loc;
};

/**
 * Builds a whole PIL program: globals, sync objects, functions.
 */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(const std::string &name);
    ~ProgramBuilder();

    ProgramBuilder(const ProgramBuilder &) = delete;
    ProgramBuilder &operator=(const ProgramBuilder &) = delete;

    /** Declare a global array. */
    GlobalId global(const std::string &gname, int size = 1,
                    std::vector<std::int64_t> init = {});

    /** Declare a mutex. */
    SyncId mutex(const std::string &mname);

    /** Declare a condition variable. */
    SyncId cond(const std::string &cname);

    /** Declare a barrier with @p count participants. */
    SyncId barrier(const std::string &bname, int count);

    /**
     * Start a new function; the returned builder stays valid until
     * build().
     */
    FunctionBuilder &function(const std::string &fname, int num_params);

    /**
     * Resolve call targets, finalize pcs, verify, and return the
     * completed program. The entry point is the function named
     * "main" (fatal if missing).
     *
     * @param verify run the structural verifier (default true)
     */
    Program build(bool verify = true);

  private:
    friend class FunctionBuilder;

    Program prog;
    std::vector<std::unique_ptr<FunctionBuilder>> fbs;
    bool built = false;
};

} // namespace portend::ir

#endif // PORTEND_IR_BUILDER_H
