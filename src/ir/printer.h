/**
 * @file
 * Textual rendering of PIL programs (diagnostics, golden tests).
 */

#ifndef PORTEND_IR_PRINTER_H
#define PORTEND_IR_PRINTER_H

#include <string>

#include "ir/program.h"

namespace portend::ir {

/** Render one instruction (without its pc prefix). */
std::string instToString(const Program &p, const Inst &inst);

/** Render a whole program as assembler-like text. */
std::string programToString(const Program &p);

/** Count the source lines of the textual form (Table 1's LOC). */
int programLineCount(const Program &p);

} // namespace portend::ir

#endif // PORTEND_IR_PRINTER_H
