/**
 * @file
 * Structural validation of PIL programs.
 *
 * The verifier rejects malformed programs before execution: bad
 * block targets, register indices out of range, missing terminators,
 * dangling function/global/sync references, empty input domains.
 * Returning diagnostics (rather than aborting) lets tests assert on
 * specific failure modes.
 */

#ifndef PORTEND_IR_VERIFIER_H
#define PORTEND_IR_VERIFIER_H

#include <string>
#include <vector>

#include "ir/program.h"

namespace portend::ir {

/**
 * Validate @p p structurally.
 *
 * @return list of human-readable diagnostics; empty means valid
 */
std::vector<std::string> verifyProgram(const Program &p);

} // namespace portend::ir

#endif // PORTEND_IR_VERIFIER_H
