/**
 * @file
 * PIL program container: functions, basic blocks, globals, sync
 * object declarations.
 */

#ifndef PORTEND_IR_PROGRAM_H
#define PORTEND_IR_PROGRAM_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/inst.h"

namespace portend::ir {

/** A straight-line sequence of instructions ending in a terminator. */
struct BasicBlock
{
    std::string name;
    std::vector<Inst> insts;
};

/** A PIL function. */
struct Function
{
    std::string name;
    int num_params = 0;   ///< parameters arrive in registers 0..n-1
    int num_regs = 0;     ///< total virtual registers
    std::vector<BasicBlock> blocks;

    /** Block by id (checked). */
    const BasicBlock &block(BlockId b) const { return blocks.at(b); }
};

/** A named global array of cells (the unit of race detection). */
struct Global
{
    std::string name;
    int size = 1;
    std::vector<std::int64_t> init; ///< initial values (0-filled if short)
};

/**
 * A declared program input: a named environment read with a bounded
 * domain [lo, hi]. Declarations let tools (CLI `--sym-input`, the
 * fuzzer, benches) discover which inputs a program reads without
 * scanning instruction streams; `Op::Input` instructions reference
 * declarations by name.
 */
struct InputDecl
{
    std::string name;
    std::int64_t lo = 0;
    std::int64_t hi = 0;
};

/**
 * A complete PIL program.
 *
 * Finalize() assigns a unique linear program counter to every
 * instruction; analyses use pcs to name racing accesses the way the
 * paper's traces do (`RaceyAccessT1:pc1`).
 */
class Program
{
  public:
    std::string name;
    std::vector<Function> functions;
    std::vector<Global> globals;
    std::vector<std::string> mutex_names;
    std::vector<std::string> cond_names;
    std::vector<std::string> barrier_names;
    std::vector<int> barrier_counts;     ///< participant count per barrier
    std::vector<InputDecl> inputs;       ///< declared environment inputs
    FuncId entry = -1;

    /** Function id by name; -1 when absent. */
    FuncId findFunction(const std::string &fname) const;

    /** Input declaration by name; nullptr when absent. */
    const InputDecl *findInput(const std::string &iname) const;

    /** Function by id (checked). */
    const Function &function(FuncId f) const { return functions.at(f); }

    /** Global by id (checked). */
    const Global &global(GlobalId g) const { return globals.at(g); }

    /**
     * Assign linear pcs and build the pc → instruction index.
     * Must be called once after construction, before execution.
     */
    void finalize();

    /** True when finalize() ran. */
    bool finalized() const { return !pc_index.empty() || numInsts() == 0; }

    /** Total instruction count. */
    int numInsts() const;

    /** Locate the instruction with linear pc @p pc (checked). */
    const Inst &instAt(int pc) const;

    /** (function, block, index) triple for linear pc @p pc. */
    struct PcLoc
    {
        FuncId func;
        BlockId block;
        int index;
    };

    /** Decode @p pc into its function/block/index triple (checked). */
    PcLoc pcLoc(int pc) const;

    /** Total number of memory cells across all globals. */
    int numCells() const;

    /** Flat cell id of (gid, idx); the unit of race detection. */
    int cellId(GlobalId gid, int idx) const;

    /** Render flat cell id back to "global[idx]" for reports. */
    std::string cellName(int cell) const;

    /** Global id owning flat cell @p cell (-1 when out of range). */
    GlobalId cellGlobal(int cell) const;

    /**
     * Opaque per-instance slot for the runtime's decoded form
     * (rt::decodeProgram). Populated lazily after finalize() and
     * cleared by it; copies share the cached decode, which is sound
     * because it depends only on the (immutable-once-finalized)
     * program content. All access is synchronized inside decode.cc —
     * never touch this slot elsewhere.
     */
    mutable std::shared_ptr<const void> runtime_cache;

  private:
    std::vector<PcLoc> pc_index;
    std::vector<int> global_base; ///< flat cell base per global
    int total_cells = 0;
};

} // namespace portend::ir

#endif // PORTEND_IR_PROGRAM_H
