/**
 * @file
 * PIL (Portend Intermediate Language) instruction set.
 *
 * PIL is the repository's stand-in for LLVM bitcode: a small
 * register-based concurrent IR with explicit loads/stores to named
 * global arrays, structured control flow between basic blocks,
 * function calls, a POSIX-threads-shaped synchronization surface
 * (mutexes, condition variables, barriers, create/join), symbolic
 * inputs with bounded domains, and output system calls. Everything
 * Portend's analyses need to observe — racing memory accesses,
 * synchronization operations, outputs — is an explicit instruction.
 */

#ifndef PORTEND_IR_INST_H
#define PORTEND_IR_INST_H

#include <cstdint>
#include <string>

#include "sym/expr.h"

namespace portend::ir {

/** Index of a virtual register within a function frame. */
using Reg = int;

/** Index of a global array in the program. */
using GlobalId = int;

/** Index of a synchronization object (mutex/cond/barrier). */
using SyncId = int;

/** Index of a function in the program. */
using FuncId = int;

/** Index of a basic block within a function. */
using BlockId = int;

/** Instruction opcodes. */
enum class Op : std::uint8_t {
    Nop,
    // Data movement and ALU.
    ConstOp,       ///< dst = imm
    Mov,           ///< dst = a
    Bin,           ///< dst = binop(kind, a, b)
    Un,            ///< dst = unop(kind, a)
    Select,        ///< dst = a ? b : c
    // Memory (global arrays; the index is an operand).
    Load,          ///< dst = globals[gid][a]
    Store,         ///< globals[gid][a] = b
    // Control flow.
    Br,            ///< if a != 0 goto then_block else else_block
    Jmp,           ///< goto then_block
    Call,          ///< dst = fid(args...)   (args in a, b, c)
    Ret,           ///< return a (or void)
    Halt,          ///< terminate the whole program normally
    // Threads.
    ThreadCreate,  ///< dst = spawn fid(a)
    ThreadJoin,    ///< join thread id in a
    // Synchronization.
    MutexLock,     ///< lock mutex sid
    MutexUnlock,   ///< unlock mutex sid
    CondWait,      ///< wait on cond sid with mutex sid2
    CondSignal,    ///< wake one waiter of cond sid
    CondBroadcast, ///< wake all waiters of cond sid
    BarrierWait,   ///< wait at barrier sid
    AtomicRmW,     ///< globals[gid][a] += b atomically; dst = old value
    Yield,         ///< voluntary scheduling point
    Sleep,         ///< advance this thread's virtual time by a ticks
    // Environment.
    Input,         ///< dst = program input (symbolic under Portend)
    GetTime,       ///< dst = nondeterministic time (logged for replay)
    Output,        ///< output system call with value a under label text
    OutputStr,     ///< output system call with literal string text
    Assert,        ///< semantic predicate: a == 0 violates the spec
};

/** Printable opcode mnemonic. */
const char *opName(Op op);

/** True when @p op ends a basic block. */
bool isTerminator(Op op);

/** An operand: either a register or an immediate constant. */
struct Operand
{
    enum class Kind : std::uint8_t { None, RegK, ImmK };

    Kind kind = Kind::None;
    Reg reg = -1;
    std::int64_t imm = 0;

    Operand() = default;

    /** Register operand. */
    static Operand
    r(Reg r)
    {
        Operand o;
        o.kind = Kind::RegK;
        o.reg = r;
        return o;
    }

    /** Immediate operand. */
    static Operand
    i(std::int64_t v)
    {
        Operand o;
        o.kind = Kind::ImmK;
        o.imm = v;
        return o;
    }

    bool isReg() const { return kind == Kind::RegK; }
    bool isImm() const { return kind == Kind::ImmK; }
    bool present() const { return kind != Kind::None; }
};

/** Pseudo source location attached to instructions for reports. */
struct SourceLoc
{
    std::string file;
    int line = 0;

    std::string toString() const;
};

/**
 * One PIL instruction.
 *
 * A plain aggregate: the interpreter treats instructions as read-only
 * after Program::finalize() assigns global program counters.
 */
struct Inst
{
    Op op = Op::Nop;

    Reg dst = -1;          ///< destination register (when produced)
    Operand a, b, c;       ///< generic operands

    sym::ExprKind kind = sym::ExprKind::Add; ///< ALU operation for Bin/Un
    sym::Width width = sym::Width::I64;      ///< ALU/memory width

    GlobalId gid = -1;     ///< global array (Load/Store/AtomicRmW)
    SyncId sid = -1;       ///< sync object id
    SyncId sid2 = -1;      ///< second sync object (CondWait's mutex)
    FuncId fid = -1;       ///< callee / spawned function
    BlockId then_block = -1;
    BlockId else_block = -1;

    std::string text;      ///< label for Input/Output/OutputStr
    std::int64_t lo = INT64_MIN; ///< Input domain lower bound
    std::int64_t hi = INT64_MAX; ///< Input domain upper bound

    SourceLoc loc;         ///< pseudo source location
    int pc = -1;           ///< linear program counter (set by finalize)
};

} // namespace portend::ir

#endif // PORTEND_IR_INST_H
