#include "ir/builder.h"

#include <algorithm>

#include "ir/verifier.h"
#include "support/logging.h"

namespace portend::ir {

FunctionBuilder::FunctionBuilder(ProgramBuilder *owner, FuncId id,
                                 int num_params)
    : owner(owner), id(id), next_reg(num_params)
{}

Function &
FunctionBuilder::fn()
{
    return owner->prog.functions[id];
}

Reg
FunctionBuilder::param(int i) const
{
    return i;
}

Reg
FunctionBuilder::fresh()
{
    return next_reg++;
}

BlockId
FunctionBuilder::block(const std::string &bname)
{
    fn().blocks.push_back(BasicBlock{bname, {}});
    BlockId b = static_cast<BlockId>(fn().blocks.size() - 1);
    if (cur < 0)
        cur = b;
    return b;
}

FunctionBuilder &
FunctionBuilder::to(BlockId b)
{
    cur = b;
    return *this;
}

FunctionBuilder &
FunctionBuilder::file(const std::string &f)
{
    loc.file = f;
    return *this;
}

FunctionBuilder &
FunctionBuilder::line(int l)
{
    loc.line = l;
    return *this;
}

Inst &
FunctionBuilder::emit(Op op)
{
    PORTEND_ASSERT(cur >= 0, "no insertion block in ", fn().name);
    Inst inst;
    inst.op = op;
    inst.loc = loc;
    auto &insts = fn().blocks[cur].insts;
    insts.push_back(std::move(inst));
    return insts.back();
}

Reg
FunctionBuilder::iconst(std::int64_t v)
{
    Reg d = fresh();
    Inst &i = emit(Op::ConstOp);
    i.dst = d;
    i.a = I(v);
    return d;
}

Reg
FunctionBuilder::mov(Operand a)
{
    Reg d = fresh();
    Inst &i = emit(Op::Mov);
    i.dst = d;
    i.a = a;
    return d;
}

void
FunctionBuilder::movInto(Reg dst, Operand a)
{
    Inst &i = emit(Op::Mov);
    i.dst = dst;
    i.a = a;
}

void
FunctionBuilder::binInto(Reg dst, sym::ExprKind k, Operand a, Operand b,
                         sym::Width w)
{
    Inst &i = emit(Op::Bin);
    i.dst = dst;
    i.a = a;
    i.b = b;
    i.kind = k;
    i.width = w;
}

Reg
FunctionBuilder::bin(sym::ExprKind k, Operand a, Operand b, sym::Width w)
{
    Reg d = fresh();
    Inst &i = emit(Op::Bin);
    i.dst = d;
    i.a = a;
    i.b = b;
    i.kind = k;
    i.width = w;
    return d;
}

Reg
FunctionBuilder::un(sym::ExprKind k, Operand a, sym::Width w)
{
    Reg d = fresh();
    Inst &i = emit(Op::Un);
    i.dst = d;
    i.a = a;
    i.kind = k;
    i.width = w;
    return d;
}

Reg
FunctionBuilder::select(Operand c, Operand t, Operand f)
{
    Reg d = fresh();
    Inst &i = emit(Op::Select);
    i.dst = d;
    i.a = c;
    i.b = t;
    i.c = f;
    return d;
}

Reg
FunctionBuilder::load(GlobalId g, Operand idx)
{
    Reg d = fresh();
    Inst &i = emit(Op::Load);
    i.dst = d;
    i.gid = g;
    i.a = idx;
    return d;
}

void
FunctionBuilder::store(GlobalId g, Operand idx, Operand val)
{
    Inst &i = emit(Op::Store);
    i.gid = g;
    i.a = idx;
    i.b = val;
}

void
FunctionBuilder::br(Operand cond, BlockId then_b, BlockId else_b)
{
    Inst &i = emit(Op::Br);
    i.a = cond;
    i.then_block = then_b;
    i.else_block = else_b;
}

void
FunctionBuilder::jmp(BlockId b)
{
    Inst &i = emit(Op::Jmp);
    i.then_block = b;
}

Reg
FunctionBuilder::call(const std::string &callee,
                      std::vector<Operand> args)
{
    PORTEND_ASSERT(args.size() <= 3, "at most 3 call args supported");
    Reg d = fresh();
    Inst &i = emit(Op::Call);
    i.dst = d;
    i.text = callee;
    if (args.size() > 0)
        i.a = args[0];
    if (args.size() > 1)
        i.b = args[1];
    if (args.size() > 2)
        i.c = args[2];
    return d;
}

void
FunctionBuilder::callVoid(const std::string &callee,
                          std::vector<Operand> args)
{
    PORTEND_ASSERT(args.size() <= 3, "at most 3 call args supported");
    Inst &i = emit(Op::Call);
    i.text = callee;
    if (args.size() > 0)
        i.a = args[0];
    if (args.size() > 1)
        i.b = args[1];
    if (args.size() > 2)
        i.c = args[2];
}

void
FunctionBuilder::ret(Operand a)
{
    Inst &i = emit(Op::Ret);
    i.a = a;
}

void
FunctionBuilder::retVoid()
{
    emit(Op::Ret);
}

void
FunctionBuilder::halt()
{
    emit(Op::Halt);
}

Reg
FunctionBuilder::threadCreate(const std::string &callee, Operand arg)
{
    Reg d = fresh();
    Inst &i = emit(Op::ThreadCreate);
    i.dst = d;
    i.text = callee;
    i.a = arg;
    return d;
}

void
FunctionBuilder::threadJoin(Operand tid)
{
    Inst &i = emit(Op::ThreadJoin);
    i.a = tid;
}

void
FunctionBuilder::lock(SyncId m)
{
    emit(Op::MutexLock).sid = m;
}

void
FunctionBuilder::unlock(SyncId m)
{
    emit(Op::MutexUnlock).sid = m;
}

void
FunctionBuilder::condWait(SyncId cv, SyncId m)
{
    Inst &i = emit(Op::CondWait);
    i.sid = cv;
    i.sid2 = m;
}

void
FunctionBuilder::condSignal(SyncId cv)
{
    emit(Op::CondSignal).sid = cv;
}

void
FunctionBuilder::condBroadcast(SyncId cv)
{
    emit(Op::CondBroadcast).sid = cv;
}

void
FunctionBuilder::barrierWait(SyncId bar)
{
    emit(Op::BarrierWait).sid = bar;
}

Reg
FunctionBuilder::atomicAdd(GlobalId g, Operand idx, Operand delta)
{
    Reg d = fresh();
    Inst &i = emit(Op::AtomicRmW);
    i.dst = d;
    i.gid = g;
    i.a = idx;
    i.b = delta;
    return d;
}

void
FunctionBuilder::yield()
{
    emit(Op::Yield);
}

void
FunctionBuilder::sleep(Operand ticks)
{
    emit(Op::Sleep).a = ticks;
}

Reg
FunctionBuilder::input(const std::string &iname, std::int64_t lo,
                       std::int64_t hi)
{
    Reg d = fresh();
    Inst &i = emit(Op::Input);
    i.dst = d;
    i.text = iname;
    i.lo = lo;
    i.hi = hi;
    // Register (or widen) the program-level declaration so tools can
    // enumerate inputs without scanning instruction streams.
    for (auto &decl : owner->prog.inputs) {
        if (decl.name == iname) {
            decl.lo = std::min(decl.lo, lo);
            decl.hi = std::max(decl.hi, hi);
            return d;
        }
    }
    owner->prog.inputs.push_back(InputDecl{iname, lo, hi});
    return d;
}

Reg
FunctionBuilder::getTime()
{
    Reg d = fresh();
    emit(Op::GetTime).dst = d;
    return d;
}

void
FunctionBuilder::output(const std::string &label, Operand v)
{
    Inst &i = emit(Op::Output);
    i.text = label;
    i.a = v;
}

void
FunctionBuilder::outputStr(const std::string &s)
{
    emit(Op::OutputStr).text = s;
}

void
FunctionBuilder::assertTrue(Operand cond, const std::string &label)
{
    Inst &i = emit(Op::Assert);
    i.a = cond;
    i.text = label;
}

ProgramBuilder::ProgramBuilder(const std::string &name)
{
    prog.name = name;
}

ProgramBuilder::~ProgramBuilder() = default;

GlobalId
ProgramBuilder::global(const std::string &gname, int size,
                       std::vector<std::int64_t> init)
{
    PORTEND_ASSERT(size > 0, "global ", gname, " must have size > 0");
    prog.globals.push_back(Global{gname, size, std::move(init)});
    return static_cast<GlobalId>(prog.globals.size() - 1);
}

SyncId
ProgramBuilder::mutex(const std::string &mname)
{
    prog.mutex_names.push_back(mname);
    return static_cast<SyncId>(prog.mutex_names.size() - 1);
}

SyncId
ProgramBuilder::cond(const std::string &cname)
{
    prog.cond_names.push_back(cname);
    return static_cast<SyncId>(prog.cond_names.size() - 1);
}

SyncId
ProgramBuilder::barrier(const std::string &bname, int count)
{
    prog.barrier_names.push_back(bname);
    prog.barrier_counts.push_back(count);
    return static_cast<SyncId>(prog.barrier_names.size() - 1);
}

FunctionBuilder &
ProgramBuilder::function(const std::string &fname, int num_params)
{
    PORTEND_ASSERT(!built, "builder already consumed");
    Function f;
    f.name = fname;
    f.num_params = num_params;
    prog.functions.push_back(std::move(f));
    FuncId id = static_cast<FuncId>(prog.functions.size() - 1);
    fbs.push_back(std::unique_ptr<FunctionBuilder>(
        new FunctionBuilder(this, id, num_params)));
    return *fbs.back();
}

Program
ProgramBuilder::build(bool verify)
{
    PORTEND_ASSERT(!built, "builder already consumed");
    built = true;

    // Record register counts.
    for (std::size_t i = 0; i < fbs.size(); ++i)
        prog.functions[i].num_regs = fbs[i]->numRegs();

    // Resolve call / thread-create targets by name.
    for (auto &f : prog.functions) {
        for (auto &b : f.blocks) {
            for (auto &inst : b.insts) {
                if (inst.op == Op::Call ||
                    inst.op == Op::ThreadCreate) {
                    inst.fid = prog.findFunction(inst.text);
                    if (inst.fid < 0) {
                        PORTEND_FATAL("unresolved callee '", inst.text,
                                      "' in ", f.name);
                    }
                }
            }
        }
    }

    prog.entry = prog.findFunction("main");
    if (prog.entry < 0)
        PORTEND_FATAL("program ", prog.name, " has no main function");

    prog.finalize();

    if (verify) {
        std::vector<std::string> errors = verifyProgram(prog);
        if (!errors.empty()) {
            std::string all;
            for (const auto &e : errors)
                all += "\n  " + e;
            PORTEND_FATAL("program ", prog.name,
                          " failed verification:", all);
        }
    }
    return std::move(prog);
}

} // namespace portend::ir
