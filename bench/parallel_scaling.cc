/**
 * @file
 * Parallel-scaling benchmark for the classification engine.
 *
 * Runs the full 11-workload suite end to end (detect + classify) at
 * increasing `--jobs` values, mirroring the CLI's batch mode: whole
 * workload pipelines are the unit of parallelism, fanned out on the
 * support/ thread pool. Emits one JSON object with wall-clock
 * seconds and speedup per worker count, plus a determinism check —
 * the concatenated Fig. 6 report bytes of every parallel run must
 * equal the sequential run's.
 *
 * Usage: bench_parallel_scaling [repeat] [max_jobs]
 *   repeat    timing repetitions per jobs value; the minimum is
 *             reported (default 3)
 *   max_jobs  highest worker count, doubled from 1 (default:
 *             hardware concurrency, at least 4)
 *
 * Speedup saturates at the machine's core count; on a single-core
 * host every jobs value measures ~1x by construction.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "support/threadpool.h"

namespace {

using namespace portend;

/** Everything one suite pass produces: wall time + report bytes. */
struct SuitePass
{
    double seconds = 0.0;
    std::string reports;
};

/**
 * One full-suite pass with @p jobs workers, batch-mode style:
 * workloads are claimed from a shared cursor, classified with
 * sequential inner pipelines, and their reports merged in registry
 * order.
 */
SuitePass
runSuite(const std::vector<std::string> &names, int jobs)
{
    Stopwatch sw;
    std::vector<std::string> rendered(names.size());

    const auto renderOne = [&](std::size_t i) {
        bench::WorkloadRun run = bench::runWorkload(names[i]);
        std::ostringstream os;
        for (const core::PortendReport &r : run.result.reports)
            os << core::formatReport(run.workload.program, r);
        rendered[i] = os.str();
    };

    ThreadPool::parallelFor(jobs, names.size(), [&] {
        return [&](std::size_t i) { renderOne(i); };
    });

    SuitePass pass;
    pass.seconds = sw.seconds();
    for (const std::string &r : rendered)
        pass.reports += r;
    return pass;
}

} // namespace

int
main(int argc, char **argv)
{
    const int repeat = argc > 1 ? std::atoi(argv[1]) : 3;
    int max_jobs = argc > 2 ? std::atoi(argv[2])
                            : std::max(4, ThreadPool::hardwareConcurrency());
    if (repeat < 1 || max_jobs < 1) {
        std::fprintf(stderr,
                     "usage: bench_parallel_scaling [repeat] "
                     "[max_jobs]\n");
        return 2;
    }

    const std::vector<std::string> names = workloads::workloadNames();
    std::vector<int> jobs_axis;
    for (int j = 1; j <= max_jobs; j *= 2)
        jobs_axis.push_back(j);
    if (jobs_axis.back() != max_jobs)
        jobs_axis.push_back(max_jobs);

    double baseline = 0.0;
    std::string baseline_reports;
    bool deterministic = true;

    std::printf("{\n  \"bench\": \"parallel_scaling\",\n");
    std::printf("  \"workloads\": %zu,\n", names.size());
    std::printf("  \"repeat\": %d,\n", repeat);
    std::printf("  \"hardware_threads\": %d,\n",
                ThreadPool::hardwareConcurrency());
    std::printf("  \"results\": [\n");
    for (std::size_t jx = 0; jx < jobs_axis.size(); ++jx) {
        const int jobs = jobs_axis[jx];
        double best = 0.0;
        std::string reports;
        for (int r = 0; r < repeat; ++r) {
            SuitePass pass = runSuite(names, jobs);
            if (r == 0 || pass.seconds < best)
                best = pass.seconds;
            reports = std::move(pass.reports);
        }
        if (jobs == 1) {
            baseline = best;
            baseline_reports = reports;
        } else if (reports != baseline_reports) {
            deterministic = false;
        }
        const double speedup = best > 0.0 ? baseline / best : 0.0;
        std::printf("    {\"jobs\": %d, \"seconds\": %.6f, "
                    "\"speedup\": %.3f}%s\n",
                    jobs, best, speedup,
                    jx + 1 < jobs_axis.size() ? "," : "");
    }
    std::printf("  ],\n");
    std::printf("  \"deterministic\": %s\n",
                deterministic ? "true" : "false");
    std::printf("}\n");
    return deterministic ? 0 : 1;
}
