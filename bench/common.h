/**
 * @file
 * Shared helpers for the evaluation harnesses (one binary per paper
 * table/figure). Each harness prints rows in the shape of the
 * paper's Tables 1-5 and Figures 7/9/10.
 */

#ifndef PORTEND_BENCH_COMMON_H
#define PORTEND_BENCH_COMMON_H

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "portend/portend.h"
#include "support/stats.h"
#include "workloads/registry.h"

namespace portend::bench {

/** One workload's full pipeline result. */
struct WorkloadRun
{
    workloads::Workload workload;
    core::PortendResult result;
    double detection_seconds = 0.0;
};

/** Run the full Portend pipeline over @p name. */
inline WorkloadRun
runWorkload(const std::string &name, core::PortendOptions opts = {})
{
    WorkloadRun run;
    run.workload = workloads::buildWorkload(name);
    core::Portend tool(run.workload.program, opts);
    run.result = tool.run();
    run.detection_seconds = run.result.detection.seconds;
    return run;
}

/** Ground truth entry for one classified report (by cell name). */
inline const workloads::ExpectedRace *
truthFor(const WorkloadRun &run, const core::PortendReport &report,
         std::multimap<std::string, const workloads::ExpectedRace *>
             &pool)
{
    std::string cell = run.workload.program.cellName(
        report.cluster.representative.cell);
    auto it = pool.find(cell);
    if (it == pool.end())
        return nullptr;
    const workloads::ExpectedRace *e = it->second;
    pool.erase(it);
    return e;
}

/** Build the consumable ground-truth pool for a run. */
inline std::multimap<std::string, const workloads::ExpectedRace *>
truthPool(const WorkloadRun &run)
{
    std::multimap<std::string, const workloads::ExpectedRace *> pool;
    for (const auto &e : run.workload.expected)
        pool.insert({e.cell, &e});
    return pool;
}

/** Accuracy of a run's classifications against ground truth. */
inline double
accuracyVsTruth(const WorkloadRun &run)
{
    auto pool = truthPool(run);
    int correct = 0;
    int total = 0;
    for (const auto &r : run.result.reports) {
        const workloads::ExpectedRace *e = truthFor(run, r, pool);
        total += 1;
        if (e && r.classification.cls == e->truth)
            correct += 1;
    }
    // Undetected expected races also count against accuracy.
    total += static_cast<int>(pool.size());
    return total ? 100.0 * correct / total : 100.0;
}

/** Print a horizontal rule. */
inline void
rule(int width = 78)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

} // namespace portend::bench

#endif // PORTEND_BENCH_COMMON_H
