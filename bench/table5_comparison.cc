/**
 * @file
 * Table 5: per-category classification accuracy of each approach on
 * the full 93-race population — Record/Replay-Analyzer [45], the
 * ad-hoc-synchronization detectors (Helgrind+ [27] /
 * Ad-Hoc-Detector [55]), and Portend, all against manually
 * established ground truth.
 */

#include "bench/common.h"

#include "baseline/adhoc_detector.h"
#include "baseline/replay_analyzer.h"

using namespace portend;

namespace {

struct Tally
{
    int correct = 0;
    int total = 0;

    void
    add(bool ok)
    {
        total += 1;
        correct += ok ? 1 : 0;
    }

    std::string
    pct() const
    {
        if (!total)
            return "   -";
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%3.0f%%",
                      100.0 * correct / total);
        return buf;
    }
};

/** Per-category tallies for one approach. */
struct Approach
{
    Tally spec, kwitness, outdiff, singleord;

    Tally &
    byTruth(core::RaceClass truth)
    {
        switch (truth) {
          case core::RaceClass::SpecViolated: return spec;
          case core::RaceClass::KWitnessHarmless: return kwitness;
          case core::RaceClass::OutputDiffers: return outdiff;
          default: return singleord;
        }
    }
};

} // namespace

int
main()
{
    Approach rr, adhoc, portend_tool;
    int portend_correct = 0, total = 0;
    // Record/Replay precision counters: of the races it calls
    // harmful (resp. harmless), how many truly are (the paper's 10%
    // figure is this precision on the harmful class).
    int rr_harmful_calls = 0, rr_harmful_right = 0;
    int rr_harmless_calls = 0, rr_harmless_right = 0;

    for (const auto &name : workloads::workloadNames()) {
        bench::WorkloadRun run = bench::runWorkload(name);
        const ir::Program &prog = run.workload.program;
        baseline::ReplayAnalyzer analyzer(prog);
        baseline::AdhocDetector spin_detector(prog);

        auto pool = bench::truthPool(run);
        for (const auto &r : run.result.reports) {
            const workloads::ExpectedRace *e =
                bench::truthFor(run, r, pool);
            if (!e)
                continue;
            total += 1;
            const core::RaceClass truth = e->truth;

            // Portend's fine-grained verdict.
            bool portend_ok = r.classification.cls == truth;
            portend_tool.byTruth(truth).add(portend_ok);
            portend_correct += portend_ok ? 1 : 0;

            // Record/Replay-Analyzer: harmful/harmless only.
            baseline::ReplayAnalysis ra = analyzer.analyze(
                r.cluster.representative, run.result.detection.trace);
            bool rr_ok;
            switch (truth) {
              case core::RaceClass::SpecViolated:
                rr_ok = ra.verdict ==
                        baseline::ReplayVerdict::LikelyHarmful;
                break;
              case core::RaceClass::KWitnessHarmless:
                rr_ok = ra.verdict ==
                        baseline::ReplayVerdict::LikelyHarmless;
                break;
              default:
                rr_ok = false; // cannot express these categories
                break;
            }
            rr.byTruth(truth).add(rr_ok);
            if (ra.verdict == baseline::ReplayVerdict::LikelyHarmful) {
                rr_harmful_calls += 1;
                rr_harmful_right +=
                    truth == core::RaceClass::SpecViolated ? 1 : 0;
            }
            if (ra.verdict ==
                baseline::ReplayVerdict::LikelyHarmless) {
                rr_harmless_calls += 1;
                rr_harmless_right +=
                    truth == core::RaceClass::KWitnessHarmless ? 1
                                                               : 0;
            }

            // Ad-hoc detectors: single-ordering only.
            baseline::AdhocVerdict av =
                spin_detector.classify(r.cluster.representative);
            bool adhoc_ok =
                truth == core::RaceClass::SingleOrdering &&
                av == baseline::AdhocVerdict::SingleOrdering;
            adhoc.byTruth(truth).add(adhoc_ok);
        }
    }

    std::printf("Table 5: accuracy per approach and category "
                "(%d races)\n", total);
    bench::rule(86);
    std::printf("%-28s %10s %10s %10s %10s\n", "", "specViol",
                "k-witness", "outDiff", "singleOrd");
    bench::rule(86);
    std::printf("%-28s %10s %10s %10s %10s\n", "Ground Truth", "100%",
                "100%", "100%", "100%");
    std::printf("%-28s %10s %10s %10s %10s\n",
                "Record/Replay-Analyzer", rr.spec.pct().c_str(),
                rr.kwitness.pct().c_str(),
                "0%(n/c)", "0%(n/c)");
    std::printf("%-28s %10s %10s %10s %10s\n",
                "Ad-Hoc-Detector/Helgrind+", "0%(n/c)", "0%(n/c)",
                "0%(n/c)", adhoc.singleord.pct().c_str());
    std::printf("%-28s %10s %10s %10s %10s\n", "Portend",
                portend_tool.spec.pct().c_str(),
                portend_tool.kwitness.pct().c_str(),
                portend_tool.outdiff.pct().c_str(),
                portend_tool.singleord.pct().c_str());
    bench::rule(86);
    std::printf("Portend overall: %d/%d (paper: 92/93 = 99%%); "
                "'n/c' = the approach cannot classify\n",
                portend_correct, total);
    std::printf("Record/Replay-Analyzer precision: harmful verdicts "
                "%d/%d = %.0f%% (paper: 10%%),\n  harmless verdicts "
                "%d/%d = %.0f%% (paper: 95%%); replay failures on "
                "single-ordering races\n  are the dominant error "
                "source, as in the paper (Section 5.4).\n",
                rr_harmful_right, rr_harmful_calls,
                rr_harmful_calls
                    ? 100.0 * rr_harmful_right / rr_harmful_calls
                    : 0.0,
                rr_harmless_right, rr_harmless_calls,
                rr_harmless_calls
                    ? 100.0 * rr_harmless_right / rr_harmless_calls
                    : 0.0);
    return 0;
}
