/**
 * @file
 * Campaign warm-rerun benchmark.
 *
 * Measures the verdict cache's headline effect: a persistent
 * campaign over the full 11-workload registry suite, run cold
 * (empty state directory, every unit executes the detect+classify
 * pipeline) and then warm (same directory, every unit resumes from
 * the journal + cache with zero execution), with a byte-equality
 * check over the merged verdict output — the cache must change
 * time, never bytes.
 *
 * Emits one JSON object. Exit status: 0 when the warm and cold
 * outputs are byte-identical, the warm run executed nothing, and
 * the warm rerun is >= 5x faster than the cold run; 1 otherwise
 * (CI gates on it).
 *
 * Usage: bench_campaign [repeats] [state_dir]
 *   repeats    timed warm reruns, best-of (default 3)
 *   state_dir  campaign directory (default campaign-bench.state;
 *              removed and recreated for the cold run)
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "campaign/campaign.h"
#include "support/stats.h"

namespace {

using namespace portend;

} // namespace

int
main(int argc, char **argv)
{
    const int repeats = argc > 1 ? std::atoi(argv[1]) : 3;
    const std::string dir =
        argc > 2 ? argv[2] : "campaign-bench.state";

    std::filesystem::remove_all(dir);

    campaign::CampaignConfig config;
    config.render.json = true;
    config.units = campaign::registryUnits();

    std::string error;
    std::optional<campaign::Campaign> cold =
        campaign::Campaign::create(dir, config, &error);
    if (!cold) {
        std::fprintf(stderr, "campaign create failed: %s\n",
                     error.c_str());
        return 1;
    }

    Stopwatch cold_sw;
    campaign::CampaignResult cold_res = cold->run();
    const double cold_s = cold_sw.seconds();
    if (!cold_res.complete() || !cold_res.error.empty()) {
        std::fprintf(stderr, "cold run failed: %s\n",
                     cold_res.error.c_str());
        return 1;
    }
    const std::string cold_bytes = cold_res.mergedOutput(true);

    // Warm reruns: best-of-N so one cold file cache or scheduler
    // hiccup does not decide the gate.
    double warm_s = 0.0;
    campaign::CampaignResult warm_res;
    std::string warm_bytes;
    for (int r = 0; r < std::max(1, repeats); ++r) {
        std::optional<campaign::Campaign> warm =
            campaign::Campaign::open(dir, &error);
        if (!warm) {
            std::fprintf(stderr, "campaign open failed: %s\n",
                         error.c_str());
            return 1;
        }
        Stopwatch sw;
        campaign::CampaignResult res = warm->run();
        const double s = sw.seconds();
        if (r == 0 || s < warm_s) {
            warm_s = s;
            warm_res = std::move(res);
            warm_bytes = warm_res.mergedOutput(true);
        }
    }

    const bool identical = warm_bytes == cold_bytes;
    const bool nothing_executed = warm_res.executed == 0;
    const double speedup = warm_s > 0.0 ? cold_s / warm_s : 0.0;
    const bool pass = identical && nothing_executed && speedup >= 5.0;

    std::printf("{\n");
    std::printf("  \"bench\": \"campaign_warm_rerun\",\n");
    std::printf("  \"units\": %d,\n",
                static_cast<int>(config.units.size()));
    std::printf("  \"cold_seconds\": %.6f,\n", cold_s);
    std::printf("  \"cold_executed\": %d,\n", cold_res.executed);
    std::printf("  \"warm_seconds\": %.6f,\n", warm_s);
    std::printf("  \"warm_executed\": %d,\n", warm_res.executed);
    std::printf("  \"warm_resume_skips\": %d,\n",
                warm_res.resume_skips);
    std::printf("  \"warm_speedup\": %.2f,\n", speedup);
    std::printf("  \"bytes_identical\": %s,\n",
                identical ? "true" : "false");
    std::printf("  \"pass\": %s\n", pass ? "true" : "false");
    std::printf("}\n");

    if (!pass) {
        std::fprintf(
            stderr,
            "campaign bench FAILED: identical=%d executed=%d "
            "speedup=%.2f (need identical, 0 executed, >= 5x)\n",
            identical ? 1 : 0, warm_res.executed, speedup);
        return 1;
    }
    return 0;
}
