/**
 * @file
 * Fuzzing-throughput benchmark.
 *
 * Runs fixed-seed fuzz campaigns at increasing `--jobs` values and
 * reports generated programs/sec and classified clusters/sec per
 * worker count, plus a determinism check: every parallel campaign's
 * summary bytes must equal the sequential campaign's (the corpus is
 * not written here; `tests/fuzz_corpus_test.cc` covers corpus-byte
 * determinism).
 *
 * Usage: bench_fuzz_throughput [budget] [repeat] [max_jobs]
 *   budget    programs per campaign (default 200)
 *   repeat    timing repetitions per jobs value; minimum reported
 *             (default 3)
 *   max_jobs  highest worker count, doubled from 1 (default:
 *             hardware concurrency, at least 4)
 *
 * Throughput saturates at the machine's core count; on a single-core
 * host every jobs value measures ~1x by construction.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/common.h"
#include "fuzz/fuzzer.h"
#include "support/threadpool.h"

namespace {

using namespace portend;

/** One campaign pass: wall time + deterministic summary bytes. */
struct CampaignPass
{
    double seconds = 0.0;
    int classifications = 0;
    std::string summary;
};

CampaignPass
runCampaign(int budget, int jobs)
{
    fuzz::FuzzOptions opts;
    opts.budget = budget;
    opts.fuzz_seed = 42;
    opts.jobs = jobs;
    fuzz::FuzzResult res = fuzz::runFuzz(opts);

    CampaignPass pass;
    pass.seconds = res.seconds;
    for (const auto &[cls, n] : res.class_counts)
        pass.classifications += n;
    pass.summary = res.summaryText();
    return pass;
}

} // namespace

int
main(int argc, char **argv)
{
    const int budget = argc > 1 ? std::atoi(argv[1]) : 200;
    const int repeat = argc > 2 ? std::atoi(argv[2]) : 3;
    int max_jobs = argc > 3
                       ? std::atoi(argv[3])
                       : std::max(4, ThreadPool::hardwareConcurrency());
    if (budget < 1 || repeat < 1 || max_jobs < 1) {
        std::fprintf(stderr, "usage: bench_fuzz_throughput [budget] "
                             "[repeat] [max_jobs]\n");
        return 2;
    }

    std::vector<int> jobs_axis;
    for (int j = 1; j <= max_jobs; j *= 2)
        jobs_axis.push_back(j);
    if (jobs_axis.back() != max_jobs)
        jobs_axis.push_back(max_jobs);

    double baseline = 0.0;
    std::string baseline_summary;
    bool deterministic = true;

    std::printf("{\n  \"bench\": \"fuzz_throughput\",\n");
    std::printf("  \"budget\": %d,\n", budget);
    std::printf("  \"repeat\": %d,\n", repeat);
    std::printf("  \"hardware_threads\": %d,\n",
                ThreadPool::hardwareConcurrency());
    std::printf("  \"results\": [\n");
    for (std::size_t jx = 0; jx < jobs_axis.size(); ++jx) {
        const int jobs = jobs_axis[jx];
        double best = 0.0;
        CampaignPass pass;
        for (int r = 0; r < repeat; ++r) {
            pass = runCampaign(budget, jobs);
            if (r == 0 || pass.seconds < best)
                best = pass.seconds;
        }
        if (jobs == 1) {
            baseline = best;
            baseline_summary = pass.summary;
        } else if (pass.summary != baseline_summary) {
            deterministic = false;
        }
        const double speedup = best > 0.0 ? baseline / best : 0.0;
        const double prog_rate = best > 0.0 ? budget / best : 0.0;
        const double cls_rate =
            best > 0.0 ? pass.classifications / best : 0.0;
        std::printf("    {\"jobs\": %d, \"seconds\": %.6f, "
                    "\"programs_per_sec\": %.1f, "
                    "\"classifications_per_sec\": %.1f, "
                    "\"speedup\": %.3f}%s\n",
                    jobs, best, prog_rate, cls_rate, speedup,
                    jx + 1 < jobs_axis.size() ? "," : "");
    }
    std::printf("  ],\n");
    std::printf("  \"deterministic\": %s\n",
                deterministic ? "true" : "false");
    std::printf("}\n");
    return deterministic ? 0 : 1;
}
