/**
 * @file
 * Serve-layer benchmark: submission latency and unit throughput of
 * the multi-process sharded triage server across worker counts.
 *
 * For each worker count the harness forks a fresh server (Unix
 * socket, empty state directory), submits a campaign manifest cold
 * (every unit executes in a worker process), then resubmits it warm
 * (answered from the journal + cache with zero dispatches), timing
 * both round trips through the real wire protocol. A byte-equality
 * check against a single-process ephemeral campaign run gates every
 * configuration — sharding and recovery must change time, never
 * bytes.
 *
 * Emits one JSON object (BENCH_serve.json in CI). Exit status: 0
 * when every configuration's bytes are identical to the
 * single-process reference and every warm resubmission is faster
 * than its cold submission; 1 otherwise (CI gates on it).
 *
 * Usage: bench_serve_bench [state_root]
 *   state_root  scratch root (default serve-bench.state; removed
 *               and recreated per configuration)
 *
 * Single-core caveat: with one hardware thread the worker processes
 * serialize on the CPU, so multi-worker speedups only show on real
 * multi-core hosts; the gate therefore checks correctness (bytes)
 * and the cache effect (warm < cold), not scaling ratios.
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "serve/client.h"
#include "serve/server.h"
#include "support/stats.h"
#include "support/subproc.h"

namespace {

using namespace portend;

struct Config
{
    int workers = 1;
    double cold_s = 0.0;
    double warm_s = 0.0;
    bool identical = false;
};

} // namespace

int
main(int argc, char **argv)
{
#ifdef _WIN32
    std::fprintf(stderr, "serve bench: POSIX only\n");
    (void)argc;
    (void)argv;
    return 0;
#else
    const std::string root =
        argc > 1 ? argv[1] : "serve-bench.state";

    campaign::CampaignConfig config;
    config.render.json = true;
    config.units = campaign::registryUnits();
    const std::string manifest = campaign::manifestText(config);

    // Single-process reference bytes: the identity every sharded
    // configuration must reproduce.
    campaign::Campaign reference(config);
    campaign::CampaignResult ref_res = reference.run();
    if (!ref_res.complete()) {
        std::fprintf(stderr, "reference run incomplete\n");
        return 1;
    }
    const std::string ref_bytes = ref_res.mergedOutput(true);

    std::vector<Config> rows;
    bool pass = true;
    for (int workers : {1, 2, 4}) {
        std::filesystem::remove_all(root);
        std::filesystem::create_directories(root);

        serve::ServeOptions so;
        so.dir = root + "/state";
        so.socket_path = root + "/sock";
        so.workers = workers;
        std::string err;
        std::optional<sub::Child> server = sub::spawn(
            [so](int) {
                serve::Server s(so);
                std::string e;
                if (!s.start(&e)) {
                    std::fprintf(stderr, "server: %s\n", e.c_str());
                    return 1;
                }
                return s.loop();
            },
            &err);
        if (!server) {
            std::fprintf(stderr, "spawn failed: %s\n", err.c_str());
            return 1;
        }

        serve::Endpoint ep;
        ep.socket_path = so.socket_path;

        Config row;
        row.workers = workers;
        std::string cold_bytes, warm_bytes;
        Stopwatch cold_sw;
        const bool cold_ok =
            serve::submit(ep, manifest, &cold_bytes, &err);
        row.cold_s = cold_sw.seconds();
        Stopwatch warm_sw;
        const bool warm_ok =
            cold_ok && serve::submit(ep, manifest, &warm_bytes, &err);
        row.warm_s = warm_sw.seconds();
        if (!cold_ok || !warm_ok)
            std::fprintf(stderr, "submit (workers=%d): %s\n",
                         workers, err.c_str());
        row.identical = cold_ok && warm_ok &&
                        cold_bytes == ref_bytes &&
                        warm_bytes == ref_bytes;

        serve::requestShutdown(ep, nullptr);
        int status = -1;
        while (!sub::reap(*server, &status)) {
        }
        sub::closeChannel(*server);

        pass = pass && row.identical && row.warm_s < row.cold_s;
        rows.push_back(row);
    }
    std::filesystem::remove_all(root);

    std::printf("{\n");
    std::printf("  \"bench\": \"serve_sharded_triage\",\n");
    std::printf("  \"units\": %zu,\n", config.units.size());
    std::printf("  \"configs\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Config &r = rows[i];
        std::printf("    {\"workers\": %d, "
                    "\"cold_submit_s\": %.3f, "
                    "\"warm_submit_s\": %.3f, "
                    "\"units_per_s_cold\": %.2f, "
                    "\"bytes_identical\": %s}%s\n",
                    r.workers, r.cold_s, r.warm_s,
                    r.cold_s > 0.0
                        ? static_cast<double>(config.units.size()) /
                              r.cold_s
                        : 0.0,
                    r.identical ? "true" : "false",
                    i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ],\n");
    std::printf("  \"pass\": %s\n", pass ? "true" : "false");
    std::printf("}\n");
    return pass ? 0 : 1;
#endif
}
