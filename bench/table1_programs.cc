/**
 * @file
 * Table 1: programs analyzed with Portend — size, language, forked
 * threads. Prints the paper's reported LOC for the modeled original
 * alongside the PIL model's own size.
 */

#include "bench/common.h"
#include "ir/printer.h"

using namespace portend;

int
main()
{
    std::printf("Table 1: Programs analyzed with Portend\n");
    bench::rule();
    std::printf("%-18s %12s %10s %10s %12s\n", "Program",
                "Size (LOC)", "Language", "# Forked", "Model (PIL)");
    bench::rule();
    for (const auto &name : workloads::workloadNames()) {
        workloads::Workload w = workloads::buildWorkload(name);
        std::printf("%-18s %12d %10s %10d %12d\n", w.name.c_str(),
                    w.paper_loc, w.language.c_str(),
                    w.forked_threads,
                    ir::programLineCount(w.program));
    }
    bench::rule();
    std::printf("Size (LOC) reproduces the paper's Table 1 column; "
                "Model (PIL) is the\ntextual line count of this "
                "repository's executable model.\n");
    return 0;
}
