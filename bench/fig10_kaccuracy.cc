/**
 * @file
 * Figure 10: Portend's accuracy with increasing values of k (the
 * number of path x schedule combinations explored), for Pbzip2,
 * Ctrace, Memcached, and Bbuf. k maps onto the Mp dial with Ma
 * fixed; the paper found k = 5 sufficient for 99% accuracy.
 */

#include "bench/common.h"

using namespace portend;

int
main()
{
    const std::vector<std::string> apps{"pbzip2", "ctrace",
                                        "memcached", "bbuf"};
    const int ks[] = {1, 3, 5, 7, 9, 11};

    std::printf("Figure 10: accuracy with increasing k "
                "[%% races correctly classified]\n");
    bench::rule(70);
    std::printf("%6s", "k");
    for (const auto &a : apps)
        std::printf(" %12s", a.c_str());
    std::printf("\n");
    bench::rule(70);

    for (int k : ks) {
        core::PortendOptions opts;
        opts.mp = k;
        opts.ma = k >= 5 ? 2 : 1;
        opts.multi_path = k > 1;
        opts.multi_schedule = k >= 5;
        std::printf("%6d", k);
        for (const auto &a : apps) {
            bench::WorkloadRun run = bench::runWorkload(a, opts);
            std::printf(" %11.0f%%", bench::accuracyVsTruth(run));
        }
        std::printf("\n");
    }
    bench::rule(70);
    std::printf("Expected shape (paper): accuracy climbs with k and "
                "saturates by k = 5.\n");
    return 0;
}
