/**
 * @file
 * Checkpoint-cost and replay-prefix-savings benchmark.
 *
 * Quantifies the two effects of the copy-on-write VmState and the
 * shared checkpoint ladder, across the 11 registry workloads plus a
 * batch of fixed-seed fuzzed programs:
 *
 *  1. Per-fork checkpoint cost: the time to copy a mid-execution
 *     VmState (Portend's checkpoint/fork primitive) with structural
 *     sharing vs the deep-copy baseline (the same copy followed by
 *     VmState::unshareAll(), which materializes every page, stack,
 *     and map exactly as the pre-COW code did on every copy).
 *
 *  2. Prefix-replay savings: wall-clock time to classify every race
 *     cluster with a per-batch CheckpointLadder vs replaying each
 *     cluster's pre-race prefix from step 0, with a byte-equality
 *     check over the Fig. 6 report text (the ladder must change
 *     time, never verdicts).
 *
 * Emits one JSON object. Exit status: 0 when the reports are
 * byte-identical and the aggregate fork speedup is >= 2x, 1
 * otherwise (CI gates on it).
 *
 * Usage: bench_checkpoint [forks] [fuzz_programs] [fuzz_seed]
 *   forks          copy repetitions per measured state (default 2000)
 *   fuzz_programs  fuzzed programs to include (default 8)
 *   fuzz_seed      generator seed (default 42)
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "fuzz/generator.h"
#include "replay/checkpoint.h"
#include "replay/replayer.h"
#include "rt/interpreter.h"
#include "rt/policy.h"

namespace {

using namespace portend;

/** One measured program. */
struct Subject
{
    std::string name;
    ir::Program program;
    std::vector<core::SemanticPredicate> semantic_predicates;
};

/** Fork-cost measurement over one pre-race state. */
struct ForkCost
{
    double cow_ns = 0.0;
    double deep_ns = 0.0;
    std::uint64_t state_cells = 0;
};

/** Classification timing with and without a ladder. */
struct ClassifyCost
{
    double ladder_s = 0.0;
    double replay_s = 0.0;
    std::uint64_t prefix_steps_saved = 0;
    int clusters = 0;
    bool identical = true;
};

/**
 * Time @p forks state copies. The copied state is consumed via its
 * step counter so the copy cannot be optimized away; deep mode
 * materializes every COW container afterwards, reproducing the
 * pre-COW per-fork cost.
 */
double
timeForks(const rt::VmState &state, int forks, bool deep)
{
    std::uint64_t sink = 0;
    const auto pass = [&] {
        Stopwatch sw;
        for (int i = 0; i < forks; ++i) {
            rt::VmState copy = state;
            if (deep)
                copy.unshareAll();
            sink += copy.global_step + copy.mem.size();
        }
        return sw.seconds() * 1e9 / std::max(1, forks);
    };
    pass(); // warmup: faults pages, ramps the clock
    double best = pass();
    for (int r = 0; r < 2; ++r)
        best = std::min(best, pass());
    if (sink == 0) // defeat dead-code elimination
        std::fprintf(stderr, "impossible\n");
    return best;
}

/** Replay to the first cluster's pre-race point; null if unreachable. */
bool
preRaceState(const Subject &s, const core::DetectionResult &det,
             rt::VmState &out)
{
    if (det.clusters.empty())
        return false;
    const race::RaceReport &race = det.clusters[0].representative;
    core::PortendOptions opts;
    rt::ExecOptions eo = core::RaceAnalyzer::replayOptions(opts);
    eo.concrete_inputs = det.trace.concreteInputs();
    rt::Interpreter interp(s.program, eo);
    rt::RotatePolicy rotate;
    replay::TracePolicy tp(det.trace,
                           replay::TracePolicy::Mode::Strict, &rotate);
    interp.setPolicy(&tp);
    rt::Interpreter::StopSpec pre;
    pre.before_cell.push_back(
        {race.first.tid, race.cell, race.first.cell_occurrence});
    interp.run(pre);
    if (!interp.stopped())
        return false;
    out = interp.state();
    return true;
}

/** Fig. 6 report text of one classification pass. */
std::string
renderAll(const Subject &s, const core::DetectionResult &det,
          const std::vector<core::Classification> &cls)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < det.clusters.size(); ++i) {
        core::PortendReport r;
        r.cluster = det.clusters[i];
        r.classification = cls[i];
        os << core::formatReport(s.program, r);
    }
    return os.str();
}

ClassifyCost
timeClassification(const Subject &s, const core::DetectionResult &det)
{
    ClassifyCost cost;
    cost.clusters = static_cast<int>(det.clusters.size());
    core::PortendOptions opts;
    opts.semantic_predicates = s.semantic_predicates;
    core::RaceAnalyzer analyzer(s.program, opts);

    // Baseline: every cluster replays its prefix from step 0.
    std::vector<core::Classification> plain;
    Stopwatch sw;
    for (const auto &c : det.clusters)
        plain.push_back(analyzer.classify(c.representative, det.trace));
    cost.replay_s = sw.seconds();

    // Ladder: one shared build replay, clusters fork from rungs.
    std::vector<core::Classification> laddered;
    sw.reset();
    replay::CheckpointLadder ladder = replay::CheckpointLadder::build(
        s.program, det.trace,
        replay::CheckpointLadder::targetsFor(det.clusters),
        core::RaceAnalyzer::replayOptions(opts),
        opts.semantic_predicates);
    for (const auto &c : det.clusters) {
        laddered.push_back(
            analyzer.classify(c.representative, det.trace, &ladder));
    }
    cost.ladder_s = sw.seconds();
    cost.prefix_steps_saved =
        ladder.prefixStepsCovered() >= ladder.buildSteps()
            ? ladder.prefixStepsCovered() - ladder.buildSteps()
            : 0;
    cost.identical =
        renderAll(s, det, plain) == renderAll(s, det, laddered);
    return cost;
}

} // namespace

int
main(int argc, char **argv)
{
    const int forks = argc > 1 ? std::atoi(argv[1]) : 2000;
    const int fuzz_programs = argc > 2 ? std::atoi(argv[2]) : 8;
    const std::uint64_t fuzz_seed =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;
    if (forks < 1 || fuzz_programs < 0) {
        std::fprintf(stderr, "usage: bench_checkpoint [forks] "
                             "[fuzz_programs] [fuzz_seed]\n");
        return 2;
    }

    std::vector<Subject> subjects;
    for (const std::string &name : workloads::workloadNames()) {
        workloads::Workload w = workloads::buildWorkload(name);
        subjects.push_back(
            {name, w.program, w.semantic_predicates});
    }
    fuzz::GeneratorOptions gopts;
    for (int i = 0; i < fuzz_programs; ++i) {
        fuzz::GeneratedProgram gp = fuzz::generateProgram(
            fuzz_seed, static_cast<std::uint64_t>(i), gopts);
        if (!gp.verify_errors.empty())
            continue;
        subjects.push_back({gp.program.name, std::move(gp.program), {}});
    }

    bool all_identical = true;
    Accumulator fork_speedups;     // per-subject cow-vs-deep ratios
    double ladder_total = 0.0;
    double replay_total = 0.0;
    std::uint64_t steps_saved = 0;

    std::printf("{\n  \"bench\": \"checkpoint\",\n");
    std::printf("  \"forks\": %d,\n", forks);
    std::printf("  \"fuzz_programs\": %d,\n", fuzz_programs);
    std::printf("  \"fuzz_seed\": %llu,\n",
                static_cast<unsigned long long>(fuzz_seed));
    std::printf("  \"subjects\": [\n");

    bool first_row = true;
    for (const Subject &s : subjects) {
        core::PortendOptions popts;
        popts.semantic_predicates = s.semantic_predicates;
        core::Portend tool(s.program, popts);
        core::DetectionResult det = tool.detect();

        rt::VmState pre;
        if (!preRaceState(s, det, pre))
            continue; // race-free or unreachable: nothing to measure

        ForkCost fork;
        fork.state_cells = pre.mem.size();
        fork.cow_ns = timeForks(pre, forks, false);
        fork.deep_ns = timeForks(pre, forks, true);
        const double speedup =
            fork.cow_ns > 0.0 ? fork.deep_ns / fork.cow_ns : 0.0;
        fork_speedups.add(speedup);

        ClassifyCost cls = timeClassification(s, det);
        all_identical = all_identical && cls.identical;
        ladder_total += cls.ladder_s;
        replay_total += cls.replay_s;
        steps_saved += cls.prefix_steps_saved;

        std::printf("%s    {\"name\": \"%s\", \"cells\": %llu, "
                    "\"clusters\": %d, "
                    "\"fork_cow_ns\": %.1f, \"fork_deep_ns\": %.1f, "
                    "\"fork_speedup\": %.2f, "
                    "\"classify_ladder_s\": %.6f, "
                    "\"classify_replay_s\": %.6f, "
                    "\"prefix_steps_saved\": %llu, "
                    "\"identical_reports\": %s}",
                    first_row ? "" : ",\n", s.name.c_str(),
                    static_cast<unsigned long long>(fork.state_cells),
                    cls.clusters, fork.cow_ns, fork.deep_ns, speedup,
                    cls.ladder_s, cls.replay_s,
                    static_cast<unsigned long long>(
                        cls.prefix_steps_saved),
                    cls.identical ? "true" : "false");
        first_row = false;
    }

    const double mean_fork_speedup = fork_speedups.mean();
    const double classify_speedup =
        ladder_total > 0.0 ? replay_total / ladder_total : 0.0;
    std::printf("\n  ],\n");
    std::printf("  \"summary\": {\n");
    std::printf("    \"mean_fork_speedup\": %.2f,\n",
                mean_fork_speedup);
    std::printf("    \"min_fork_speedup\": %.2f,\n",
                fork_speedups.count() ? fork_speedups.min() : 0.0);
    std::printf("    \"classify_ladder_s\": %.6f,\n", ladder_total);
    std::printf("    \"classify_replay_s\": %.6f,\n", replay_total);
    std::printf("    \"classify_speedup\": %.3f,\n", classify_speedup);
    std::printf("    \"prefix_steps_saved\": %llu\n",
                static_cast<unsigned long long>(steps_saved));
    std::printf("  },\n");
    std::printf("  \"deterministic\": %s\n",
                all_identical ? "true" : "false");
    std::printf("}\n");

    // CI gate: reports byte-identical and forks >= 2x cheaper.
    return (all_identical && mean_fork_speedup >= 2.0) ? 0 : 1;
}
