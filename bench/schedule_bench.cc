/**
 * @file
 * Schedule-exploration benchmark: distinct interleavings per budget
 * and verdict latency, `random` vs `dpor`.
 *
 * Measures what the Ma budget actually buys under each stage-3
 * explorer, over two micro suites:
 *
 *  1. the registry micro workloads (avv, dcl, dbm, rw, bbuf) —
 *     paper-faithful programs whose post-race spaces are small, so
 *     both explorers saturate them (the honest baseline rows);
 *
 *  2. schedule-rich micro programs ("flip gadgets"): workers with
 *     staggered private preambles all appending to one shared log
 *     cell behind a benign anchoring race. Their post-race class
 *     count is combinatorial and uniform sampling is heavily biased
 *     toward short-preamble-first orders — the regime the dpor
 *     explorer exists for.
 *
 * Emits one JSON object (BENCH_schedules.json in CI) with
 * per-subject and aggregate distinct-schedule counts and batch
 * classification latency per explorer. Exit status: 0 when, over
 * the schedule-rich gadgets, dpor witnessed >= 2x the distinct
 * post-race interleavings random did at the same Ma budget (and
 * at least as many on every subject), 1 otherwise — CI gates on it.
 *
 * Usage: bench_schedule_bench [ma] [gadget_workers] [stride]
 *   ma              schedule budget per primary (default 8)
 *   gadget_workers  threads per flip gadget (default 4)
 *   stride          preamble ops per worker index (default 6)
 */

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "explore/explorer.h"
#include "ir/builder.h"
#include "support/stats.h"

namespace {

using namespace portend;
using ir::I;
using ir::R;
using K = sym::ExprKind;

/** One measured program. */
struct Subject
{
    std::string name;
    bool gadget = false; ///< counts toward the gated ratio
    ir::Program program;
    std::vector<core::SemanticPredicate> semantic_predicates;
};

/** One (subject, explorer) measurement. */
struct Row
{
    int explored = 0;  ///< stage-3 schedules run
    int distinct = 0;  ///< Mazurkiewicz-inequivalent ones
    double seconds = 0.0; ///< classification batch latency
    std::string classes;  ///< verdict histogram (sanity)
};

/** The flip gadget (see file comment). */
ir::Program
flipGadget(const std::string &name, int workers, int stride)
{
    ir::ProgramBuilder pb(name);
    ir::GlobalId sync = pb.global("sync_cell");
    ir::GlobalId log = pb.global("log_cell");
    std::vector<std::string> names;
    for (int w = 0; w < workers; ++w) {
        std::string fn = "w" + std::to_string(w);
        names.push_back(fn);
        ir::GlobalId priv = pb.global(fn + "_priv");
        auto &f = pb.function(fn, 1);
        f.to(f.block("e"));
        f.store(sync, I(0), I(1)); // benign anchoring race
        for (int i = 0; i < w * stride; ++i) {
            ir::Reg v = f.load(priv);
            f.store(priv, I(0), R(f.bin(K::Add, R(v), I(1))));
        }
        ir::Reg lv = f.load(log);
        f.store(log, I(0),
                R(f.bin(K::Add, R(f.bin(K::Mul, R(lv), I(10))),
                        I(w + 1))));
        f.retVoid();
    }
    auto &m = pb.function("main", 0);
    m.to(m.block("e"));
    std::vector<ir::Reg> tids;
    for (const auto &n : names)
        tids.push_back(m.threadCreate(n, I(0)));
    for (ir::Reg t : tids)
        m.threadJoin(R(t));
    m.outputStr("done");
    m.halt();
    return pb.build();
}

Row
measure(const Subject &s, explore::ExploreMode mode, int ma)
{
    core::PortendOptions opts;
    opts.jobs = 1;
    opts.ma = ma;
    opts.explore = mode;
    opts.semantic_predicates = s.semantic_predicates;
    core::Portend tool(s.program, opts);
    Stopwatch sw;
    core::PortendResult res = tool.run();
    Row row;
    row.seconds = sw.seconds() - res.detection.seconds;
    row.explored = res.scheduling.schedules_explored;
    row.distinct = res.scheduling.distinct_schedules;
    std::map<std::string, int> hist;
    for (const core::PortendReport &r : res.reports)
        hist[core::raceClassName(r.classification.cls)] += 1;
    std::ostringstream os;
    for (const auto &[cls, n] : hist)
        os << (os.tellp() > 0 ? "," : "") << cls << ":" << n;
    row.classes = os.str();
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    const int ma = argc > 1 ? std::atoi(argv[1]) : 8;
    const int workers = argc > 2 ? std::atoi(argv[2]) : 4;
    const int stride = argc > 3 ? std::atoi(argv[3]) : 6;

    std::vector<Subject> subjects;
    for (const char *name : {"avv", "dcl", "dbm", "rw", "bbuf"}) {
        workloads::Workload w = workloads::buildWorkload(name);
        subjects.push_back({w.name, false, w.program,
                            w.semantic_predicates});
    }
    for (int g = 0; g < 3; ++g) {
        std::string name = "flip-gadget-w" +
                           std::to_string(workers - g) + "-s" +
                           std::to_string(stride + 2 * g);
        subjects.push_back({name, true,
                            flipGadget(name, workers - g,
                                       stride + 2 * g),
                            {}});
    }

    int gadget_random = 0;
    int gadget_dpor = 0;
    bool per_subject_ok = true;

    std::ostringstream js;
    js << "{\n  \"bench\": \"schedule_bench\",\n";
    js << "  \"ma\": " << ma << ",\n";
    js << "  \"subjects\": [\n";
    for (std::size_t i = 0; i < subjects.size(); ++i) {
        const Subject &s = subjects[i];
        Row rnd = measure(s, explore::ExploreMode::Random, ma);
        Row dpo = measure(s, explore::ExploreMode::Dpor, ma);
        if (s.gadget) {
            gadget_random += rnd.distinct;
            gadget_dpor += dpo.distinct;
        }
        if (dpo.distinct < rnd.distinct)
            per_subject_ok = false;
        js << "    {\"name\": \"" << s.name << "\", \"gadget\": "
           << (s.gadget ? "true" : "false") << ",\n";
        js << "     \"random\": {\"explored\": " << rnd.explored
           << ", \"distinct\": " << rnd.distinct
           << ", \"seconds\": " << rnd.seconds << ", \"classes\": \""
           << rnd.classes << "\"},\n";
        js << "     \"dpor\": {\"explored\": " << dpo.explored
           << ", \"distinct\": " << dpo.distinct
           << ", \"seconds\": " << dpo.seconds << ", \"classes\": \""
           << dpo.classes << "\"}}"
           << (i + 1 < subjects.size() ? "," : "") << "\n";
    }
    js << "  ],\n";
    const double ratio =
        gadget_random > 0
            ? static_cast<double>(gadget_dpor) / gadget_random
            : 0.0;
    js << "  \"gadget_totals\": {\"random_distinct\": "
       << gadget_random << ", \"dpor_distinct\": " << gadget_dpor
       << ", \"ratio\": " << ratio << "},\n";
    const bool pass = ratio >= 2.0 && per_subject_ok;
    js << "  \"gate\": {\"require\": \"dpor >= 2x random distinct "
          "on gadgets, >= on every subject\", \"pass\": "
       << (pass ? "true" : "false") << "}\n}\n";
    std::fputs(js.str().c_str(), stdout);
    return pass ? 0 : 1;
}
