/**
 * @file
 * Table 2: "spec violated" races and their consequences. Runs the
 * default pipeline on the five applications with harmful races,
 * plus the two §5.1 extensions: the fmm semantic timestamp check
 * and the memcached what-if synchronization removal.
 */

#include "bench/common.h"

using namespace portend;

namespace {

struct Row
{
    std::string program;
    int total = 0;
    int deadlock = 0;
    int crash = 0;
    int semantic = 0;
};

Row
countRow(const std::string &name, const bench::WorkloadRun &run)
{
    Row row;
    row.program = name;
    row.total = static_cast<int>(run.result.reports.size());
    for (const auto &r : run.result.reports) {
        if (r.classification.cls != core::RaceClass::SpecViolated)
            continue;
        switch (r.classification.viol) {
          case core::ViolationKind::Deadlock:
            row.deadlock += 1;
            break;
          case core::ViolationKind::Crash:
          case core::ViolationKind::InfiniteLoop:
            row.crash += 1;
            break;
          case core::ViolationKind::SemanticAssert:
            row.semantic += 1;
            break;
          default:
            break;
        }
    }
    return row;
}

} // namespace

int
main()
{
    std::vector<Row> rows;

    rows.push_back(
        countRow("SQLite", bench::runWorkload("sqlite")));
    rows.push_back(
        countRow("pbzip2", bench::runWorkload("pbzip2")));
    rows.push_back(
        countRow("ctrace", bench::runWorkload("ctrace")));

    // fmm with the semantic predicate installed (§5.1: "verify that
    // all timestamps used in fmm are positive / monotonic").
    {
        bench::WorkloadRun run;
        run.workload = workloads::buildWorkload("fmm");
        core::PortendOptions opts;
        opts.semantic_predicates = run.workload.semantic_predicates;
        core::Portend tool(run.workload.program, opts);
        run.result = tool.run();
        rows.push_back(countRow("fmm (+predicate)", run));
    }

    // memcached what-if: a synchronization operation turned into a
    // no-op; Portend proves the induced race can crash the server.
    {
        bench::WorkloadRun run;
        run.workload = workloads::buildWorkload("memcached-whatif");
        core::Portend tool(run.workload.program,
                           core::PortendOptions{});
        run.result = tool.run();
        rows.push_back(countRow("memcached (what-if)", run));
    }

    std::printf("Table 2: 'spec violated' races and their "
                "consequences\n");
    bench::rule();
    std::printf("%-20s %8s | %9s %7s %9s\n", "Program", "# races",
                "Deadlock", "Crash", "Semantic");
    bench::rule();
    int harm = 0;
    for (const auto &r : rows) {
        std::printf("%-20s %8d | %9d %7d %9d\n", r.program.c_str(),
                    r.total, r.deadlock, r.crash, r.semantic);
        harm += r.deadlock + r.crash + r.semantic;
    }
    bench::rule();
    std::printf("total harmful races found: %d = 6 within the "
                "93-race population (paper: 6)\n  + 1 injected by "
                "the what-if synchronization removal (paper: 1)\n",
                harm);
    return 0;
}
