/**
 * @file
 * Observability overhead gate (PR 8).
 *
 * The observability layer's contract is "zero-cost when off": every
 * instrumentation site is one relaxed atomic load and a branch, so a
 * run with no sinks installed must stay within 2% of the interpreter
 * rebuild's throughput gate. This harness measures steps/sec on the
 * interp_bench micro-workloads under three configurations:
 *
 *   disabled  no sinks installed (the default production state)
 *   metrics   process-wide Collector installed
 *   full      Collector + Tracer installed
 *
 * and gates `disabled` against the same pre-rebuild baselines as
 * bench_interp_bench: steps/sec must reach
 * (1 - overhead_budget) * min_speedup * baseline. The enabled
 * configurations are reported (they cost whatever they cost — the
 * user asked for the data) but not gated.
 *
 * Emits one JSON object (BENCH_observe.json in CI). Exit status: 0
 * when every workload passes the disabled gate, 1 otherwise.
 *
 * Usage: bench_observe_bench [reps] [trials] [overhead_budget]
 *   reps             interpreter runs per trial (default 2000)
 *   trials           trials per configuration, best taken (default 5)
 *   overhead_budget  allowed disabled-path overhead (default 0.02)
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "rt/interpreter.h"
#include "support/clock.h"
#include "support/observe.h"
#include "support/trace.h"
#include "workloads/registry.h"

namespace {

using namespace portend;

/** The speedup floor bench_interp_bench enforces; the disabled
 *  observability path must not eat into it by more than the
 *  overhead budget. */
constexpr double kMinSpeedup = 3.0;

/** Pre-rebuild steps/sec (same table as bench_interp_bench). */
struct Workload
{
    const char *name;
    double baseline_steps_per_sec;
    int reps;
};

constexpr Workload kWorkloads[] = {
    {"avv", 4585520.0, 2000},
    {"rw", 4328803.0, 2000},
    {"dbm", 4291936.0, 2000},
    {"bbuf", 3483726.0, 2000},
};

double
measureTrial(const ir::Program &p, int reps)
{
    std::uint64_t total_steps = 0;
    const std::uint64_t t0 = steadyNanos();
    for (int i = 0; i < reps; ++i) {
        rt::ExecOptions eo;
        eo.preempt_on_memory = true;
        rt::Interpreter interp(p, eo);
        interp.run();
        total_steps += interp.state().stats.steps;
    }
    const double sec = steadySeconds(t0, steadyNanos());
    return sec > 0.0 ? static_cast<double>(total_steps) / sec : 0.0;
}

double
best(const ir::Program &p, int reps, int trials)
{
    double out = 0.0;
    for (int t = 0; t < trials; ++t) {
        const double sps = measureTrial(p, reps);
        if (sps > out)
            out = sps;
    }
    return out;
}

struct Row
{
    std::string name;
    double disabled = 0.0;
    double metrics = 0.0;
    double full = 0.0;
    double speedup = 0.0; ///< disabled vs pre-rebuild baseline
    bool pass = false;
};

} // namespace

int
main(int argc, char **argv)
{
    const int reps = argc > 1 ? std::atoi(argv[1]) : 2000;
    const int trials = argc > 2 ? std::atoi(argv[2]) : 5;
    const double budget = argc > 3 ? std::atof(argv[3]) : 0.02;

    std::vector<Row> rows;
    bool pass = true;
    for (const Workload &w : kWorkloads) {
        workloads::Workload wl = workloads::buildWorkload(w.name);
        const int r = reps < w.reps ? reps : w.reps;

        // Warmup: decode + pristine-state caches.
        for (int i = 0; i < 3; ++i) {
            rt::ExecOptions eo;
            eo.preempt_on_memory = true;
            rt::Interpreter interp(wl.program, eo);
            interp.run();
        }

        Row row;
        row.name = w.name;
        row.disabled = best(wl.program, r, trials);

        obs::Collector collector;
        obs::setCollector(&collector);
        row.metrics = best(wl.program, r, trials);

        obs::Tracer tracer;
        obs::setTracer(&tracer);
        row.full = best(wl.program, r, trials);
        obs::setTracer(nullptr);
        obs::setCollector(nullptr);

        row.speedup = row.disabled / w.baseline_steps_per_sec;
        row.pass = row.speedup >= (1.0 - budget) * kMinSpeedup;
        pass = pass && row.pass;
        rows.push_back(row);
    }

    std::printf("{\n  \"bench\": \"observe\",\n");
    std::printf("  \"reps\": %d,\n", reps);
    std::printf("  \"trials\": %d,\n", trials);
    std::printf("  \"overhead_budget\": %.3f,\n", budget);
    std::printf("  \"required_speedup\": %.2f,\n",
                (1.0 - budget) * kMinSpeedup);
    std::printf("  \"dispatch\": \"%s\",\n",
                rt::dispatchModeName(rt::defaultDispatchMode()));
    std::printf("  \"workloads\": [\n");
    bool first = true;
    for (const Row &r : rows) {
        const double metrics_ovh =
            r.disabled > 0.0 ? 1.0 - r.metrics / r.disabled : 0.0;
        const double full_ovh =
            r.disabled > 0.0 ? 1.0 - r.full / r.disabled : 0.0;
        std::printf("%s    {\"name\": \"%s\", "
                    "\"disabled_steps_per_sec\": %.0f, "
                    "\"metrics_steps_per_sec\": %.0f, "
                    "\"full_steps_per_sec\": %.0f, "
                    "\"metrics_overhead\": %.4f, "
                    "\"full_overhead\": %.4f, "
                    "\"speedup\": %.2f, "
                    "\"pass\": %s}",
                    first ? "" : ",\n", r.name.c_str(), r.disabled,
                    r.metrics, r.full, metrics_ovh, full_ovh,
                    r.speedup, r.pass ? "true" : "false");
        first = false;
    }
    std::printf("\n  ],\n");
    std::printf("  \"pass\": %s\n", pass ? "true" : "false");
    std::printf("}\n");
    return pass ? 0 : 1;
}
