/**
 * @file
 * google-benchmark micro-latencies of the core primitives: vector
 * clock operations, solver queries, interpreter stepping, and
 * happens-before detection on a racy workload.
 */

#include <benchmark/benchmark.h>

#include "ir/builder.h"
#include "race/hb.h"
#include "race/vclock.h"
#include "rt/interpreter.h"
#include "sym/solver.h"

using namespace portend;
using ir::I;
using ir::R;
using K = sym::ExprKind;

namespace {

void
BM_VectorClockJoin(benchmark::State &state)
{
    race::VectorClock a, b;
    for (int t = 0; t < 8; ++t) {
        a.set(t, 100 + t);
        b.set(t, 90 + 3 * t);
    }
    for (auto _ : state) {
        race::VectorClock c = a;
        c.join(b);
        benchmark::DoNotOptimize(c.get(7));
    }
}
BENCHMARK(BM_VectorClockJoin);

void
BM_VectorClockHappensBefore(benchmark::State &state)
{
    race::VectorClock a, b;
    for (int t = 0; t < 8; ++t) {
        a.set(t, t);
        b.set(t, t + 1);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(a.lessOrEqual(b));
}
BENCHMARK(BM_VectorClockHappensBefore);

void
BM_SolverSatQuery(benchmark::State &state)
{
    sym::ExprPtr x = sym::Expr::symbol("x", 0, sym::Width::I64, 0,
                                       state.range(0));
    sym::ExprPtr y = sym::Expr::symbol("y", 1, sym::Width::I64, 0,
                                       state.range(0));
    std::vector<sym::ExprPtr> cs{
        sym::mkSlt(x, y),
        sym::mkEq(sym::mkAdd(x, y), sym::mkConst(state.range(0))),
    };
    for (auto _ : state) {
        sym::Solver solver;
        sym::Model m;
        benchmark::DoNotOptimize(solver.checkSat(cs, &m));
    }
}
BENCHMARK(BM_SolverSatQuery)->Arg(16)->Arg(64)->Arg(256);

ir::Program
interpProgram(int iters)
{
    ir::ProgramBuilder pb("bench");
    ir::GlobalId g = pb.global("acc");
    auto &m = pb.function("main", 0);
    ir::BlockId e = m.block("entry");
    ir::BlockId loop = m.block("loop");
    ir::BlockId done = m.block("done");
    m.to(e);
    ir::Reg i = m.iconst(iters);
    m.jmp(loop);
    m.to(loop);
    ir::Reg v = m.load(g);
    m.store(g, I(0), R(m.bin(K::Add, R(v), I(1))));
    m.binInto(i, K::Sub, R(i), I(1));
    m.br(R(m.bin(K::Sgt, R(i), I(0))), loop, done);
    m.to(done);
    m.halt();
    return pb.build();
}

void
BM_InterpreterSteps(benchmark::State &state)
{
    ir::Program p = interpProgram(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        rt::Interpreter interp(p, rt::ExecOptions{});
        benchmark::DoNotOptimize(interp.run());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) * 5);
}
BENCHMARK(BM_InterpreterSteps)->Arg(100)->Arg(1000);

ir::Program
racyProgram()
{
    ir::ProgramBuilder pb("racy");
    ir::GlobalId g = pb.global("x");
    auto &w = pb.function("w", 1);
    w.to(w.block("e"));
    ir::Reg v = w.load(g);
    w.store(g, I(0), R(w.bin(K::Add, R(v), I(1))));
    w.retVoid();
    auto &m = pb.function("main", 0);
    m.to(m.block("e"));
    ir::Reg t1 = m.threadCreate("w", I(0));
    ir::Reg t2 = m.threadCreate("w", I(0));
    m.threadJoin(R(t1));
    m.threadJoin(R(t2));
    m.halt();
    return pb.build();
}

void
BM_HbDetection(benchmark::State &state)
{
    ir::Program p = racyProgram();
    for (auto _ : state) {
        rt::ExecOptions eo;
        eo.preempt_on_memory = true;
        rt::Interpreter interp(p, eo);
        rt::RotatePolicy rot;
        interp.setPolicy(&rot);
        race::HbDetector hb(p);
        interp.addSink(&hb);
        interp.run();
        benchmark::DoNotOptimize(hb.races().size());
    }
}
BENCHMARK(BM_HbDetection);

} // namespace

BENCHMARK_MAIN();
