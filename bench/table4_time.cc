/**
 * @file
 * Table 4: time to classify — plain interpretation time of each
 * workload (the "Cloud9 running time" column) against Portend's
 * per-race classification time (avg/min/max). Absolute numbers
 * differ from the paper's 2008-era testbed; the shape (classifier
 * overhead within ~1-50x of interpretation) is the claim.
 */

#include "bench/common.h"

#include "portend/analyzer.h"
#include "rt/interpreter.h"

using namespace portend;

int
main()
{
    std::printf("Table 4: classification time per race\n");
    bench::rule(90);
    std::printf("%-12s %16s | %12s %12s %12s %10s\n", "Program",
                "interp time (ms)", "avg (ms)", "min (ms)",
                "max (ms)", "overhead");
    bench::rule(90);

    for (const auto &name : workloads::workloadNames()) {
        workloads::Workload w = workloads::buildWorkload(name);

        // Baseline: plain interpretation, no detection, averaged.
        Stopwatch sw;
        const int reps = 5;
        for (int i = 0; i < reps; ++i) {
            rt::ExecOptions eo;
            eo.preempt_on_memory = true;
            rt::Interpreter interp(w.program, eo);
            rt::RotatePolicy rot;
            interp.setPolicy(&rot);
            interp.run();
        }
        double interp_ms = sw.seconds() * 1000.0 / reps;

        // Classification time per race.
        core::Portend tool(w.program, core::PortendOptions{});
        core::DetectionResult det = tool.detect();
        core::RaceAnalyzer analyzer(w.program, core::PortendOptions{});
        Accumulator acc;
        for (const auto &c : det.clusters) {
            Stopwatch one;
            (void)analyzer.classify(c.representative, det.trace);
            acc.add(one.seconds() * 1000.0);
        }
        std::printf("%-12s %16.3f | %12.3f %12.3f %12.3f %9.1fx\n",
                    name.c_str(), interp_ms, acc.mean(), acc.min(),
                    acc.max(),
                    interp_ms > 0 ? acc.mean() / interp_ms : 0.0);
    }
    bench::rule(90);
    return 0;
}
