/**
 * @file
 * Table 3: summary of Portend's classification results — distinct
 * races, dynamic instances, and the four-category breakdown with
 * the post-race states-same/differ sub-columns for k-witness rows.
 */

#include "bench/common.h"

using namespace portend;

int
main()
{
    std::printf("Table 3: Summary of Portend's classification "
                "results (Mp=5, Ma=2, 2 symbolic inputs)\n");
    bench::rule(100);
    std::printf("%-12s %8s %9s | %9s %8s %11s %11s %10s\n", "Program",
                "Distinct", "Instances", "SpecViol", "OutDiff",
                "kW(same)", "kW(differ)", "SingleOrd");
    bench::rule(100);

    int total_distinct = 0, total_correct = 0;
    for (const auto &name : workloads::workloadNames()) {
        bench::WorkloadRun run = bench::runWorkload(name);
        int spec = 0, outd = 0, kw_same = 0, kw_diff = 0, single = 0;
        for (const auto &r : run.result.reports) {
            switch (r.classification.cls) {
              case core::RaceClass::SpecViolated: spec++; break;
              case core::RaceClass::OutputDiffers: outd++; break;
              case core::RaceClass::KWitnessHarmless:
                if (r.classification.states_differ)
                    kw_diff++;
                else
                    kw_same++;
                break;
              case core::RaceClass::SingleOrdering: single++; break;
              default: break;
            }
        }
        int instances = 0;
        for (const auto &r : run.result.reports)
            instances += r.cluster.instances;
        std::printf("%-12s %8zu %9d | %9d %8d %11d %11d %10d\n",
                    name.c_str(), run.result.reports.size(),
                    instances, spec, outd, kw_same, kw_diff, single);

        // Accuracy bookkeeping against the ground truth (the miss
        // is counted here exactly as in the paper).
        auto pool = bench::truthPool(run);
        for (const auto &r : run.result.reports) {
            const workloads::ExpectedRace *e =
                bench::truthFor(run, r, pool);
            total_distinct += 1;
            if (e && r.classification.cls == e->truth)
                total_correct += 1;
        }
    }
    bench::rule(100);
    std::printf("distinct races: %d (paper: 93); correctly "
                "classified vs ground truth: %d (paper: 92, 99%%)\n",
                total_distinct, total_correct);
    return 0;
}
