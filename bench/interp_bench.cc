/**
 * @file
 * Interpreter hot-path throughput benchmark.
 *
 * Measures end-to-end interpretation speed (construct + run, the way
 * every analysis consumes the interpreter) in steps/sec over the five
 * registry micro-workloads plus a tight 20k-iteration arithmetic
 * loop, and compares against the pre-rebuild interpreter's numbers
 * (map-keyed dynamic counters, per-instruction program-tree decoding,
 * expression-boxed concrete values, unconditional event
 * construction), hardcoded below as measured on the reference machine
 * with the same harness.
 *
 * Each workload takes the best of several trials so a loaded CI
 * machine gets every chance to show steady-state speed; the gate is
 * on the speedup ratio, not on absolute time.
 *
 * Also reported per workload: heap allocations per run (global
 * operator new interposition) — the rebuild's tagged values, pooled
 * register arenas, and pristine-state reset keep this flat — and the
 * active dispatch mode. A release build on GCC/Clang must run
 * direct-threaded dispatch; CI greps the JSON for it so a silent
 * fallback to the switch loop fails the build.
 *
 * Emits one JSON object. Exit status: 0 when every workload reaches
 * the speedup floor, 1 otherwise (CI gates on it).
 *
 * Usage: bench_interp_bench [reps] [trials] [min_speedup]
 *   reps         interpreter runs per micro trial (default 4000)
 *   trials       trials per workload, best taken (default 5)
 *   min_speedup  gate floor vs the pre-rebuild baseline (default 3.0)
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "ir/builder.h"
#include "rt/interpreter.h"
#include "support/clock.h"
#include "workloads/registry.h"

// --- Allocation accounting (bench-local operator new interposition).
static std::uint64_t g_allocs = 0;

void *
operator new(std::size_t n)
{
    g_allocs += 1;
    if (void *p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

using namespace portend;
using ir::I;
using ir::R;
using K = sym::ExprKind;

/**
 * Pre-rebuild steps/sec on the reference machine (same harness,
 * RelWithDebInfo, preempt_on_memory on for the micros). The rebuild
 * must beat these by min_speedup on the same machine class.
 */
struct Baseline
{
    const char *name;
    double steps_per_sec;
    bool preempt;
    int reps;
};

constexpr Baseline kBaselines[] = {
    {"avv", 4585520.0, true, 4000},
    {"rw", 4328803.0, true, 4000},
    {"dbm", 4291936.0, true, 4000},
    {"dcl", 4488109.0, true, 4000},
    {"bbuf", 3483726.0, true, 4000},
    {"loop20k", 7088162.0, false, 50},
};

/** The tight arithmetic loop: 20k iterations of load/add/store/br. */
ir::Program
loopProgram(int iters)
{
    ir::ProgramBuilder pb("interp_bench_loop");
    ir::GlobalId g = pb.global("acc");
    auto &m = pb.function("main", 0);
    ir::BlockId e = m.block("entry");
    ir::BlockId loop = m.block("loop");
    ir::BlockId done = m.block("done");
    m.to(e);
    ir::Reg i = m.iconst(iters);
    m.jmp(loop);
    m.to(loop);
    ir::Reg v = m.load(g);
    m.store(g, I(0), R(m.bin(K::Add, R(v), I(1))));
    m.binInto(i, K::Sub, R(i), I(1));
    m.br(R(m.bin(K::Sgt, R(i), I(0))), loop, done);
    m.to(done);
    m.halt();
    return pb.build();
}

/** One measured workload. */
struct Row
{
    std::string name;
    double steps_per_sec = 0.0;
    double speedup = 0.0;
    std::uint64_t steps_per_run = 0;
    std::uint64_t allocs_per_run = 0;
};

double
measureTrial(const ir::Program &p, bool preempt, int reps,
             std::uint64_t *steps_out)
{
    std::uint64_t total_steps = 0;
    const std::uint64_t t0 = steadyNanos();
    for (int i = 0; i < reps; ++i) {
        rt::ExecOptions eo;
        eo.preempt_on_memory = preempt;
        rt::Interpreter interp(p, eo);
        interp.run();
        total_steps += interp.state().stats.steps;
    }
    const double sec = steadySeconds(t0, steadyNanos());
    *steps_out = total_steps;
    return sec > 0.0 ? static_cast<double>(total_steps) / sec : 0.0;
}

Row
measure(const std::string &name, const ir::Program &p,
        const Baseline &base, int reps, int trials)
{
    Row row;
    row.name = name;
    const int r = base.reps < reps ? base.reps : reps;

    // Warmup: populates the decode and pristine-state caches and
    // faults in the text.
    for (int i = 0; i < 3; ++i) {
        rt::ExecOptions eo;
        eo.preempt_on_memory = base.preempt;
        rt::Interpreter interp(p, eo);
        interp.run();
    }

    std::uint64_t steps = 0;
    for (int t = 0; t < trials; ++t) {
        const double sps = measureTrial(p, base.preempt, r, &steps);
        if (sps > row.steps_per_sec)
            row.steps_per_sec = sps;
    }
    row.steps_per_run = steps / static_cast<std::uint64_t>(r);
    row.speedup = row.steps_per_sec / base.steps_per_sec;

    // Allocation count of one construct+run cycle, steady-state.
    const std::uint64_t a0 = g_allocs;
    {
        rt::ExecOptions eo;
        eo.preempt_on_memory = base.preempt;
        rt::Interpreter interp(p, eo);
        interp.run();
    }
    row.allocs_per_run = g_allocs - a0;
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    const int reps = argc > 1 ? std::atoi(argv[1]) : 4000;
    const int trials = argc > 2 ? std::atoi(argv[2]) : 5;
    const double min_speedup = argc > 3 ? std::atof(argv[3]) : 3.0;

    std::vector<Row> rows;
    for (const Baseline &base : kBaselines) {
        if (std::string(base.name) == "loop20k") {
            rows.push_back(measure(base.name, loopProgram(20000), base,
                                   reps, trials));
        } else {
            auto w = workloads::buildWorkload(base.name);
            rows.push_back(
                measure(base.name, w.program, base, reps, trials));
        }
    }

    bool pass = true;
    double min_ratio = 0.0;
    for (const Row &r : rows) {
        if (min_ratio == 0.0 || r.speedup < min_ratio)
            min_ratio = r.speedup;
        if (r.speedup < min_speedup)
            pass = false;
    }

    std::printf("{\n  \"bench\": \"interp\",\n");
    std::printf("  \"reps\": %d,\n", reps);
    std::printf("  \"trials\": %d,\n", trials);
    std::printf("  \"dispatch\": \"%s\",\n",
                rt::dispatchModeName(rt::defaultDispatchMode()));
    std::printf("  \"threaded_available\": %s,\n",
                rt::threadedDispatchAvailable() ? "true" : "false");
    std::printf("  \"workloads\": [\n");
    bool first = true;
    for (const Row &r : rows) {
        std::printf("%s    {\"name\": \"%s\", "
                    "\"steps_per_run\": %llu, "
                    "\"steps_per_sec\": %.0f, "
                    "\"speedup\": %.2f, "
                    "\"allocs_per_run\": %llu}",
                    first ? "" : ",\n", r.name.c_str(),
                    static_cast<unsigned long long>(r.steps_per_run),
                    r.steps_per_sec, r.speedup,
                    static_cast<unsigned long long>(r.allocs_per_run));
        first = false;
    }
    std::printf("\n  ],\n");
    std::printf("  \"summary\": {\n");
    std::printf("    \"min_speedup\": %.2f,\n", min_ratio);
    std::printf("    \"required_speedup\": %.2f\n", min_speedup);
    std::printf("  },\n");
    std::printf("  \"pass\": %s\n", pass ? "true" : "false");
    std::printf("}\n");
    return pass ? 0 : 1;
}
