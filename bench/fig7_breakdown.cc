/**
 * @file
 * Figure 7: contribution of each technique toward Portend's
 * accuracy. Starting from single-path analysis, enable one by one:
 * ad-hoc synchronization detection, multi-path analysis, and
 * multi-schedule analysis; report accuracy against ground truth for
 * Ctrace, Pbzip2, Memcached, and Bbuf.
 */

#include "bench/common.h"

using namespace portend;

int
main()
{
    const std::vector<std::string> apps{"ctrace", "pbzip2",
                                        "memcached", "bbuf"};
    struct Level
    {
        const char *label;
        core::PortendOptions opts;
    };
    std::vector<Level> levels(4);
    levels[0].label = "Single-path";
    levels[0].opts.adhoc_detection = false;
    levels[0].opts.multi_path = false;
    levels[0].opts.multi_schedule = false;
    levels[1].label = "Ad-hoc synch detection";
    levels[1].opts.adhoc_detection = true;
    levels[1].opts.multi_path = false;
    levels[1].opts.multi_schedule = false;
    levels[2].label = "Multi-path";
    levels[2].opts.adhoc_detection = true;
    levels[2].opts.multi_path = true;
    levels[2].opts.multi_schedule = false;
    levels[3].label = "Multi-path + Multi-schedule";
    levels[3].opts.adhoc_detection = true;
    levels[3].opts.multi_path = true;
    levels[3].opts.multi_schedule = true;

    std::printf("Figure 7: accuracy breakdown per technique "
                "[%% of races correctly classified]\n");
    bench::rule(88);
    std::printf("%-28s", "Technique");
    for (const auto &a : apps)
        std::printf(" %12s", a.c_str());
    std::printf("\n");
    bench::rule(88);

    for (const auto &level : levels) {
        std::printf("%-28s", level.label);
        for (const auto &a : apps) {
            bench::WorkloadRun run = bench::runWorkload(a, level.opts);
            std::printf(" %11.0f%%", bench::accuracyVsTruth(run));
        }
        std::printf("\n");
    }
    bench::rule(88);
    std::printf("Expected shape (paper): large jumps from ad-hoc "
                "detection for memcached/pbzip2,\nfrom multi-path and "
                "multi-schedule for bbuf/ctrace; no single technique "
                "suffices.\n");
    return 0;
}
