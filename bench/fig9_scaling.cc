/**
 * @file
 * Figure 9: classification time as a function of the number of
 * preemption points and the number of symbolic-input-dependent
 * branches, for representative races (one or more per workload, in
 * the paper's sqlite1/bbuf1/ctrace1/... naming).
 */

#include "bench/common.h"

#include "portend/analyzer.h"

using namespace portend;

int
main()
{
    std::printf("Figure 9: classification time vs preemptions and "
                "dependent branches\n");
    bench::rule(84);
    std::printf("%-14s %14s %18s %12s %12s\n", "race id",
                "preemptions", "dependent branches", "time (ms)",
                "steps");
    bench::rule(84);

    struct Pick
    {
        const char *app;
        int count; ///< how many races of this app to sample
    };
    const Pick picks[] = {{"sqlite", 1}, {"bbuf", 1}, {"ctrace", 1},
                          {"fmm", 1},    {"ocean", 1},
                          {"memcached", 3}};

    for (const auto &pick : picks) {
        workloads::Workload w = workloads::buildWorkload(pick.app);
        core::Portend tool(w.program, core::PortendOptions{});
        core::DetectionResult det = tool.detect();
        core::RaceAnalyzer analyzer(w.program,
                                    core::PortendOptions{});
        int done = 0;
        for (const auto &c : det.clusters) {
            if (done >= pick.count)
                break;
            Stopwatch sw;
            core::Classification cls =
                analyzer.classify(c.representative, det.trace);
            double ms = sw.seconds() * 1000.0;
            std::printf("%-11s%-3d %14llu %18llu %12.3f %12llu\n",
                        pick.app, done + 1,
                        static_cast<unsigned long long>(
                            cls.stats.preemptions),
                        static_cast<unsigned long long>(
                            cls.stats.sym_branches),
                        ms,
                        static_cast<unsigned long long>(
                            cls.stats.steps));
            done += 1;
        }
    }
    bench::rule(84);
    std::printf("Expected shape (paper): time grows with preemption "
                "points and dependent\nbranches, not with program "
                "size.\n");
    return 0;
}
