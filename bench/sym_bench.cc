/**
 * @file
 * Symbolic-classification benchmark: path-fork cost of named
 * symbolic inputs, and the no-regression gate for symbolic-off runs.
 *
 * Two measurements, one JSON object (BENCH_sym.json in CI):
 *
 *  1. Path-fork microbench: each input-sensitive extension workload
 *     (ibuf, iguard) is classified with and without `--sym-input n`.
 *     Reports states forked, solver queries, distinct schedules,
 *     verdict, and latency per mode — what making the gate input
 *     symbolic actually costs, and that it buys the upgraded
 *     verdict (the run fails if either workload does not upgrade).
 *
 *  2. Symbolic-off throughput gate: the same classification batch
 *     (micro workloads + bbuf + the extensions, all without
 *     sym_inputs) is timed against a copy whose programs have their
 *     input declarations stripped — the pre-declaration seed
 *     format. Input declarations are metadata the legacy pipeline
 *     never consumes, so the median-of-R ratio must stay within 5%;
 *     CI gates on it.
 *
 * Exit status: 0 when both gates hold, 1 otherwise.
 *
 * Usage: bench_sym_bench [reps]
 *   reps  timed repetitions per batch flavor (default 7; median)
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "support/stats.h"

namespace {

using namespace portend;

/** One (workload, mode) path-fork measurement. */
struct ForkRow
{
    std::string verdict;
    int states_created = 0;
    std::uint64_t solver_queries = 0;
    int distinct_schedules = 0;
    std::string witness; ///< "n=5" etc., "" without symbolic inputs
    double seconds = 0.0;
};

ForkRow
measureFork(const workloads::Workload &w, bool symbolic)
{
    core::PortendOptions opts;
    opts.jobs = 1;
    if (symbolic)
        opts.sym_inputs.push_back(rt::SymInputSpec{"n", false, 0, 0});
    core::Portend tool(w.program, opts);
    Stopwatch sw;
    core::PortendResult res = tool.run();
    ForkRow row;
    row.seconds = sw.seconds() - res.detection.seconds;
    row.states_created = res.scheduling.states_created;
    row.solver_queries = res.scheduling.solver_queries;
    row.distinct_schedules = res.scheduling.distinct_schedules;
    if (!res.reports.empty()) {
        const core::Classification &c =
            res.reports[0].classification;
        row.verdict = core::raceClassName(c.cls);
        std::ostringstream os;
        for (const core::WitnessInput &wi : c.evidence_witness)
            os << (os.tellp() > 0 ? " " : "") << wi.name << "="
               << wi.value;
        row.witness = os.str();
    }
    return row;
}

/** Wall seconds to classify every program in @p batch once. */
double
timeBatch(const std::vector<ir::Program> &batch)
{
    Stopwatch sw;
    for (const ir::Program &p : batch) {
        core::PortendOptions opts;
        opts.jobs = 1;
        core::Portend(p, opts).run();
    }
    return sw.seconds();
}

double
median(std::vector<double> xs)
{
    std::sort(xs.begin(), xs.end());
    return xs[xs.size() / 2];
}

} // namespace

int
main(int argc, char **argv)
{
    const int reps = argc > 1 ? std::atoi(argv[1]) : 7;

    // -- 1. Path-fork microbench --------------------------------------
    bool upgraded = true;
    std::ostringstream js;
    js << "{\n  \"bench\": \"sym_bench\",\n";
    js << "  \"fork\": [\n";
    const std::vector<std::string> ext =
        workloads::extensionWorkloadNames();
    for (std::size_t i = 0; i < ext.size(); ++i) {
        workloads::Workload w = workloads::buildWorkload(ext[i]);
        ForkRow off = measureFork(w, false);
        ForkRow on = measureFork(w, true);
        // The symbolic run must upgrade past the concrete verdict
        // and carry a solver-concretized witness.
        if (on.verdict == off.verdict || on.witness.empty())
            upgraded = false;
        js << "    {\"name\": \"" << w.name << "\",\n";
        js << "     \"concrete\": {\"verdict\": \"" << off.verdict
           << "\", \"states\": " << off.states_created
           << ", \"solver_queries\": " << off.solver_queries
           << ", \"distinct_schedules\": " << off.distinct_schedules
           << ", \"seconds\": " << off.seconds << "},\n";
        js << "     \"symbolic\": {\"verdict\": \"" << on.verdict
           << "\", \"states\": " << on.states_created
           << ", \"solver_queries\": " << on.solver_queries
           << ", \"distinct_schedules\": " << on.distinct_schedules
           << ", \"witness\": \"" << on.witness
           << "\", \"seconds\": " << on.seconds << "}}"
           << (i + 1 < ext.size() ? "," : "") << "\n";
    }
    js << "  ],\n";

    // -- 2. Symbolic-off throughput gate ------------------------------
    std::vector<ir::Program> declared;
    std::vector<ir::Program> stripped;
    for (const char *name :
         {"avv", "dcl", "dbm", "rw", "bbuf", "ibuf", "iguard"}) {
        workloads::Workload w = workloads::buildWorkload(name);
        declared.push_back(w.program);
        ir::Program bare = w.program;
        bare.inputs.clear(); // the seed serialization format
        stripped.push_back(std::move(bare));
    }
    timeBatch(declared); // warm-up (page-in, allocator steady state)
    std::vector<double> with_decls;
    std::vector<double> without_decls;
    for (int r = 0; r < reps; ++r) {
        with_decls.push_back(timeBatch(declared));
        without_decls.push_back(timeBatch(stripped));
    }
    const double t_decl = median(with_decls);
    const double t_bare = median(without_decls);
    const double ratio = t_bare > 0.0 ? t_decl / t_bare : 1.0;
    const bool within = ratio <= 1.05;

    js << "  \"symbolic_off\": {\"reps\": " << reps
       << ", \"declared_seconds\": " << t_decl
       << ", \"stripped_seconds\": " << t_bare
       << ", \"ratio\": " << ratio << "},\n";
    const bool pass = upgraded && within;
    js << "  \"gate\": {\"require\": \"sym run upgrades with a "
          "witness; symbolic-off within 5% of the decl-stripped "
          "seed batch\", \"pass\": " << (pass ? "true" : "false")
       << "}\n}\n";
    std::fputs(js.str().c_str(), stdout);
    return pass ? 0 : 1;
}
